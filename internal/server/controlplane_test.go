package server

import (
	"context"
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/model"
	"simfs/internal/netproto"
)

// controlStack builds a daemon with one demand-only context whose smax
// is 1, so a single running re-simulation saturates the paper's
// prefetch-admission rule — the lever the scheduler reconfiguration test
// flips live.
func controlStack(t *testing.T) (*Stack, string) {
	t.Helper()
	ctx := &model.Context{
		Name:               "cp",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
		OutputBytes:        256,
		RestartBytes:       128,
		Tau:                2 * time.Millisecond,
		Alpha:              40 * time.Millisecond, // wide admin window while a sim runs
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               1,
		NoPrefetch:         true,
	}
	st, err := NewStack(t.TempDir(), 1, "DCL", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunInitialSimulation("cp"); err != nil {
		t.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	t.Cleanup(func() {
		st.Close()
		st.Launcher.Wait()
	})
	return st, st.Server.Addr()
}

// waitAvailable polls an Open until the file is resident, releasing the
// reference each round.
func waitAvailable(t *testing.T, ctx *dvlib.Context, file string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := ctx.Open(file)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Close(file)
		if res.Available {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never materialized", file)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSchedReconfigureLiveDaemon flips the scheduler's priority policy on
// a live daemon and asserts the admission behaviour changes: with the
// zero (paper-exact) config a guided prefetch beyond smax is dropped;
// after `sched-set -priorities` the same hint queues and eventually
// launches instead.
func TestSchedReconfigureLiveDaemon(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()

	// The daemon boots with the zero (paper-exact) policy.
	cfg, err := admin.SchedConfig(cx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Coalesce || cfg.Priorities || cfg.TotalNodes != 0 {
		t.Fatalf("zero-config daemon reports %+v", cfg)
	}

	ctx, err := c.Init("cp")
	if err != nil {
		t.Fatal(err)
	}
	// Saturate smax=1 with a demand miss; the restart latency (40 ms)
	// keeps the slot busy while the control calls below land.
	if _, err := ctx.Open(ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	// Paper rule: prefetch at capacity is dropped.
	if _, err := ctx.Prefetch(ctx.Filename(17)); err != nil {
		t.Fatal(err)
	}
	st, err := ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedPrefetch != 1 {
		t.Fatalf("dropped prefetch = %d, want 1 (paper-exact drop at smax)", st.DroppedPrefetch)
	}

	// Flip priorities live (partial update: coalesce untouched).
	on := true
	cfg, err = admin.SetSchedConfig(cx, dvlib.SchedUpdate{Priorities: &on})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Priorities || cfg.Coalesce {
		t.Fatalf("sched-set returned %+v, want priorities on, coalesce unchanged", cfg)
	}

	// The same hint now queues instead of dropping…
	if _, err := ctx.Prefetch(ctx.Filename(33)); err != nil {
		t.Fatal(err)
	}
	st, err = ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedPrefetch != 1 {
		t.Fatalf("dropped prefetch after reconfigure = %d, want still 1 (hint queued, not dropped)", st.DroppedPrefetch)
	}
	// …and launches once the demand simulation frees the slot.
	waitAvailable(t, ctx, ctx.Filename(33))
	st, err = ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PrefetchLaunches == 0 {
		t.Error("queued guided prefetch never launched after the slot freed")
	}
	ctx.Close(ctx.Filename(1))
}

// TestCachePolicySwapLiveDaemon swaps a context's replacement scheme on
// the live daemon: the resident set survives the swap and ctxinfo
// reports the new scheme.
func TestCachePolicySwapLiveDaemon(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()

	ctx, err := c.Init("cp")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Info().Policy != "DCL" {
		t.Fatalf("boot policy = %q, want DCL", ctx.Info().Policy)
	}

	// Materialize two files, then drop the references so the swap deals
	// with an unpinned resident set.
	for _, step := range []int{2, 3} {
		f := ctx.Filename(step)
		if _, err := ctx.Open(f); err != nil {
			t.Fatal(err)
		}
		waitAvailable(t, ctx, f)
		ctx.Close(f)
	}

	if err := admin.SetCachePolicy(cx, "cp", "LIRS"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Init("cp")
	if err != nil {
		t.Fatal(err)
	}
	if info.Info().Policy != "LIRS" {
		t.Errorf("policy after swap = %q, want LIRS", info.Info().Policy)
	}
	// The resident set survived the swap: both files still hit.
	for _, step := range []int{2, 3} {
		f := ctx.Filename(step)
		res, err := ctx.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Available {
			t.Errorf("%s lost residency across the policy swap", f)
		}
		ctx.Close(f)
	}

	// Structured failures: unknown policy, unknown context.
	if err := admin.SetCachePolicy(cx, "cp", "FIFO"); dvlib.ErrCodeOf(err) != netproto.CodeBadRequest {
		t.Errorf("unknown policy: code %q (%v)", dvlib.ErrCodeOf(err), err)
	}
	if err := admin.SetCachePolicy(cx, "nope", "LRU"); dvlib.ErrCodeOf(err) != netproto.CodeNoSuchContext {
		t.Errorf("unknown context: code %q (%v)", dvlib.ErrCodeOf(err), err)
	}
}

// TestDrainResumeLiveDaemon drains a context (new opens refused with
// CodeBusy, releases still accepted) and resumes it.
func TestDrainResumeLiveDaemon(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()

	ctx, err := c.Init("cp")
	if err != nil {
		t.Fatal(err)
	}
	f := ctx.Filename(5)
	if _, err := ctx.Open(f); err != nil {
		t.Fatal(err)
	}
	if err := admin.Drain(cx, "cp"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Open(ctx.Filename(9)); dvlib.ErrCodeOf(err) != netproto.CodeBusy {
		t.Errorf("open while draining: code %q (%v), want busy", dvlib.ErrCodeOf(err), err)
	}
	// Releases still land while draining — the workload must be able to
	// empty out.
	if err := ctx.Close(f); err != nil {
		t.Errorf("release while draining: %v", err)
	}
	if err := admin.Resume(cx, "cp"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Open(ctx.Filename(9)); err != nil {
		t.Errorf("open after resume: %v", err)
	}
	ctx.Close(ctx.Filename(9))
}

// A context name that could escape the storage root is rejected before
// any directory is created.
func TestCtxRegisterRejectsPathTraversal(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()
	for _, name := range []string{"../escape", "a/b", `a\b`, "..", "."} {
		evil := &model.Context{
			Name: name, Grid: model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 8},
			OutputBytes: 64, Tau: time.Millisecond, Alpha: time.Millisecond,
			DefaultParallelism: 1, MaxParallelism: 1, SMax: 1,
		}
		if err := admin.RegisterContext(cx, evil, "LRU", false); err == nil {
			t.Errorf("context name %q accepted", name)
		}
	}
}

// TestContextLifecycleLiveDaemon registers a brand-new context on the
// running daemon, serves an analysis from it, drains it and deregisters
// it again.
func TestContextLifecycleLiveDaemon(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()

	dyn := &model.Context{
		Name:               "dyn",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32},
		OutputBytes:        128,
		RestartBytes:       64,
		Tau:                time.Millisecond,
		Alpha:              2 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               2,
		NoPrefetch:         true,
	}
	if err := admin.RegisterContext(cx, dyn, "LRU", true); err != nil {
		t.Fatal(err)
	}
	names, err := c.Contexts()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		found = found || n == "dyn"
	}
	if !found {
		t.Fatalf("registered context missing from %v", names)
	}

	// The new context serves an analysis end to end: miss, re-simulate,
	// read, bitwise-reproducible.
	dctx, err := c.Init("dyn")
	if err != nil {
		t.Fatal(err)
	}
	if dctx.Info().Policy != "LRU" {
		t.Errorf("dyn policy = %q, want LRU", dctx.Info().Policy)
	}
	f := dctx.Filename(2)
	if _, err := dctx.Open(f); err != nil {
		t.Fatal(err)
	}
	if _, err := dctx.Read(f); err != nil {
		t.Fatal(err)
	}
	if same, err := dctx.Bitrep(f); err != nil || !same {
		t.Errorf("bitrep on re-simulated file = %v, %v", same, err)
	}
	if err := dctx.Close(f); err != nil {
		t.Fatal(err)
	}

	// Deregistering a busy context is refused; after the drain empties
	// it, the removal lands.
	if err := admin.Drain(cx, "dyn"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := admin.DeregisterContext(cx, "dyn")
		if err == nil {
			break
		}
		if dvlib.ErrCodeOf(err) != netproto.CodeBusy {
			t.Fatalf("deregister failed with code %q: %v", dvlib.ErrCodeOf(err), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("context never became quiescent: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Init("dyn"); dvlib.ErrCodeOf(err) != netproto.CodeNoSuchContext {
		t.Errorf("init of deregistered context: code %q (%v)", dvlib.ErrCodeOf(err), err)
	}
	// Re-registering recovers the storage area (files stayed on disk).
	if err := admin.RegisterContext(cx, dyn, "DCL", false); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	dctx2, err := c.Init("dyn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dctx2.Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Available {
		t.Error("file produced before deregistration was not recovered by the rescan")
	}
	dctx2.Close(f)
}

// TestStatsReportControlPlaneState: the stats frame reports the live
// control-plane state an operator just reconfigured — drain status and
// the active cache replacement policy (ROADMAP PR 4 follow-up: stats
// used to omit both, leaving operators blind after drain or
// cache-policy-set).
func TestStatsReportControlPlaneState(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()
	ctx, err := c.Init("cp")
	if err != nil {
		t.Fatal(err)
	}

	st, err := ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Draining || st.CachePolicy != "DCL" {
		t.Fatalf("boot stats report draining=%v policy=%q, want false/DCL", st.Draining, st.CachePolicy)
	}

	if err := admin.Drain(cx, "cp"); err != nil {
		t.Fatal(err)
	}
	if err := admin.SetCachePolicy(cx, "cp", "LIRS"); err != nil {
		t.Fatal(err)
	}
	if st, err = ctx.Stats(); err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Error("stats frame does not report the drain just issued")
	}
	if st.CachePolicy != "LIRS" {
		t.Errorf("stats frame reports policy %q, want the live-swapped LIRS", st.CachePolicy)
	}

	if err := admin.Resume(cx, "cp"); err != nil {
		t.Fatal(err)
	}
	if st, err = ctx.Stats(); err != nil {
		t.Fatal(err)
	}
	if st.Draining {
		t.Error("stats frame still reports draining after resume")
	}
}

// TestSchedSetValidation: malformed scheduler reconfigurations are
// rejected with bad_request before any field is applied — a typo must
// not half-apply a config or silently land garbage in the scheduler.
func TestSchedSetValidation(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admin := c.Admin()
	cx := context.Background()

	intp := func(v int) *int { return &v }
	strp := func(v string) *string { return &v }
	boolp := func(v bool) *bool { return &v }

	bad := []dvlib.SchedUpdate{
		{TotalNodes: intp(-1)},
		{DRRQuantum: intp(-8)},
		{PreemptPolicy: strp("eldest")},
		// A valid knob riding along with a bad one must not land.
		{Coalesce: boolp(true), PreemptPolicy: strp("bogus")},
	}
	for i, upd := range bad {
		if _, err := admin.SetSchedConfig(cx, upd); dvlib.ErrCodeOf(err) != netproto.CodeBadRequest {
			t.Errorf("bad update %d: code %q (%v), want bad_request", i, dvlib.ErrCodeOf(err), err)
		}
	}
	cfg, err := admin.SchedConfig(cx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Coalesce || cfg.TotalNodes != 0 || cfg.DRRQuantum != 0 || (cfg.PreemptPolicy != "" && cfg.PreemptPolicy != "off") {
		t.Fatalf("rejected updates leaked into the config: %+v", cfg)
	}

	// The happy path lands and echoes.
	cfg, err = admin.SetSchedConfig(cx, dvlib.SchedUpdate{
		PreemptPolicy: strp("cheapest"), DRRQuantum: intp(16), TotalNodes: intp(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PreemptPolicy != "cheapest" || cfg.DRRQuantum != 16 || cfg.TotalNodes != 64 {
		t.Fatalf("sched-set echoed %+v, want cheapest/16/64", cfg)
	}
}

// TestPreemptCapabilityAdvertised: the daemon advertises the preempt
// capability in the hello, and the client refuses to send the gated
// fields without it (they would be silently dropped by an old daemon).
func TestPreemptCapabilityAdvertised(t *testing.T) {
	_, addr := controlStack(t)
	c, err := dvlib.Dial(addr, "ops")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.HasCapability(netproto.CapPreempt) {
		t.Fatalf("daemon caps = %v, want %q advertised", c.Capabilities(), netproto.CapPreempt)
	}
}
