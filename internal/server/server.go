// Package server implements the DV daemon (paper Sec. III): a TCP server
// exposing the Virtualizer to DVLib clients over the netproto wire
// protocol. Each connection serves one analysis application; waits and
// acquires are answered asynchronously over the same connection when
// re-simulations produce the requested files.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"simfs/internal/core"
	"simfs/internal/netproto"
)

// Server is the DV daemon front-end.
type Server struct {
	v  *core.Virtualizer
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)
}

// New wraps a Virtualizer. logf may be nil to silence logging.
func New(v *core.Virtualizer, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{v: v, conns: map[net.Conn]bool{}, logf: logf}
}

// Listen binds the daemon to addr (e.g. "127.0.0.1:7878"). Use port 0 for
// an ephemeral port; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Close. It returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// session is one client connection with a serialized writer.
type session struct {
	conn net.Conn
	wmu  sync.Mutex
	srv  *Server
	// client is the peer-declared client name, remembered so references
	// can be cleaned up on disconnect.
	client string
	// held tracks open references (context → files → count) for
	// disconnect cleanup: a crashed analysis must not pin files forever.
	held map[string]map[string]int
}

func (s *session) send(resp netproto.Response) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := netproto.WriteFrame(s.conn, resp); err != nil {
		s.srv.logf("server: write to %s: %v", s.conn.RemoteAddr(), err)
		s.conn.Close()
	}
}

func (s *Server) handle(conn net.Conn) {
	sess := &session{conn: conn, srv: s, held: map[string]map[string]int{}}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// Release references held by the departed client.
		for ctx, files := range sess.held {
			for file, n := range files {
				for i := 0; i < n; i++ {
					if err := s.v.Release(sess.client, ctx, file); err != nil {
						break
					}
				}
			}
		}
	}()
	for {
		var req netproto.Request
		if err := netproto.ReadFrame(conn, &req); err != nil {
			if err != io.EOF {
				s.logf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if req.Client != "" {
			sess.client = req.Client
		}
		s.dispatch(sess, req)
	}
}

func (s *Server) dispatch(sess *session, req netproto.Request) {
	fail := func(err error) {
		sess.send(netproto.Response{ID: req.ID, Err: err.Error()})
	}
	oneFile := func() (string, bool) {
		if len(req.Files) != 1 {
			fail(fmt.Errorf("op %s requires exactly one file", req.Op))
			return "", false
		}
		return req.Files[0], true
	}

	switch req.Op {
	case netproto.OpPing:
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpContexts:
		sess.send(netproto.Response{ID: req.ID, OK: true, Names: s.v.ContextNames()})

	case netproto.OpContextInfo:
		ctx, ok := s.v.Context(req.Context)
		if !ok {
			fail(fmt.Errorf("unknown context %q", req.Context))
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{
			Name:        ctx.Name,
			StorageDir:  ctx.StorageDir,
			FilePrefix:  ctx.FilePrefix,
			FileSuffix:  ctx.FileSuffix,
			DeltaD:      ctx.Grid.DeltaD,
			DeltaR:      ctx.Grid.DeltaR,
			Timesteps:   ctx.Grid.Timesteps,
			OutputBytes: ctx.OutputBytes,
		}})

	case netproto.OpOpen:
		file, ok := oneFile()
		if !ok {
			return
		}
		res, err := s.v.Open(req.Client, req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		sess.trackRef(req.Context, file, +1)
		sess.send(netproto.Response{ID: req.ID, OK: true, Available: res.Available, EstWaitNs: int64(res.EstWait)})

	case netproto.OpWait:
		file, ok := oneFile()
		if !ok {
			return
		}
		err := s.v.WaitFile(req.Client, req.Context, file, func(st core.Status) {
			sess.send(netproto.Response{ID: req.ID, OK: st.Err == "", Err: st.Err, Ready: st.Ready, Done: true, File: file})
		})
		if err != nil {
			fail(err)
		}

	case netproto.OpRelease:
		file, ok := oneFile()
		if !ok {
			return
		}
		if err := s.v.Release(req.Client, req.Context, file); err != nil {
			fail(err)
			return
		}
		sess.trackRef(req.Context, file, -1)
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpAcquire:
		if len(req.Files) == 0 {
			fail(errors.New("acquire requires at least one file"))
			return
		}
		// Per-file readiness notifications let the client implement
		// Waitsome/Testsome; the fan-in below sends the final frame.
		files := append([]string(nil), req.Files...)
		err := s.acquireWithPerFile(sess, req, files)
		if err != nil {
			fail(err)
		}

	case netproto.OpEstWait:
		file, ok := oneFile()
		if !ok {
			return
		}
		w, err := s.v.EstWait(req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, EstWaitNs: int64(w)})

	case netproto.OpBitrep:
		file, ok := oneFile()
		if !ok {
			return
		}
		content, err := s.readStorage(req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		same, err := s.v.Bitrep(req.Context, file, content)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Flag: same})

	case netproto.OpRegSum:
		file, ok := oneFile()
		if !ok {
			return
		}
		if err := s.v.RegisterChecksum(req.Context, file, req.Sum); err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpStats:
		st, err := s.v.Stats(req.Context)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Stats: &netproto.Stats{
			Opens: st.Opens, Hits: st.Hits, Misses: st.Misses,
			Restarts: st.Restarts, DemandRestarts: st.DemandRestarts,
			PrefetchLaunches: st.PrefetchLaunches, DroppedPrefetch: st.DroppedPrefetch,
			StepsProduced: st.StepsProduced, Evictions: st.Evictions,
			Kills: st.Kills, Failures: st.Failures, PollutionResets: st.PollutionResets,
		}})

	case netproto.OpPrefetch:
		if len(req.Files) == 0 {
			fail(errors.New("prefetch requires at least one file"))
			return
		}
		n, err := s.v.GuidedPrefetch(req.Client, req.Context, req.Files)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Count: n})

	case netproto.OpRescan:
		n, err := s.v.RescanStorageArea(req.Context)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Count: n})

	default:
		fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// acquireWithPerFile implements the acquire subscription: a per-file
// ready frame for each missing file plus a final done frame.
func (s *Server) acquireWithPerFile(sess *session, req netproto.Request, files []string) error {
	// Open every file (taking references) so re-simulations start.
	var missing []string
	for i, f := range files {
		res, err := s.v.Open(req.Client, req.Context, f)
		if err != nil {
			// Roll back references taken so far.
			for _, g := range files[:i] {
				_ = s.v.Release(req.Client, req.Context, g)
			}
			return err
		}
		sess.trackRef(req.Context, f, +1)
		if !res.Available {
			missing = append(missing, f)
		} else {
			sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
		}
	}
	if len(missing) == 0 {
		sess.send(netproto.Response{ID: req.ID, OK: true, Done: true})
		return nil
	}
	var mu sync.Mutex
	remaining := len(missing)
	failed := false
	for _, f := range missing {
		f := f
		err := s.v.WaitFile(req.Client, req.Context, f, func(st core.Status) {
			mu.Lock()
			if failed {
				mu.Unlock()
				return
			}
			if st.Err != "" {
				failed = true
				mu.Unlock()
				sess.send(netproto.Response{ID: req.ID, Err: st.Err, Done: true, File: f})
				return
			}
			remaining--
			last := remaining == 0
			mu.Unlock()
			sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
			if last {
				sess.send(netproto.Response{ID: req.ID, OK: true, Done: true})
			}
		})
		if err != nil {
			// Became resident between Open and WaitFile.
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
			if last {
				sess.send(netproto.Response{ID: req.ID, OK: true, Done: true})
			}
		}
	}
	return nil
}

// readStorage reads a file's content from the context's storage area.
func (s *Server) readStorage(ctxName, file string) ([]byte, error) {
	fs, err := s.v.StorageArea(ctxName)
	if err != nil {
		return nil, err
	}
	if fs == nil {
		return nil, fmt.Errorf("context %q has no storage area", ctxName)
	}
	return fs.Read(file)
}

func (sess *session) trackRef(ctx, file string, delta int) {
	m := sess.held[ctx]
	if m == nil {
		m = map[string]int{}
		sess.held[ctx] = m
	}
	m[file] += delta
	if m[file] <= 0 {
		delete(m, file)
	}
}
