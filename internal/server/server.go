// Package server implements the DV daemon (paper Sec. III): a TCP server
// exposing the Virtualizer to DVLib clients over the netproto wire
// protocol. Each connection serves one analysis application; waits,
// acquires and subscriptions are answered asynchronously over the same
// connection when re-simulations produce the requested files.
//
// A connection opens with the protocol handshake (netproto.OpHello):
// version and capability negotiation plus the client's name. Any other
// first frame — a pre-versioned client, or something else entirely — is
// answered with a structured CodeVersion error before the connection
// closes. After the handshake every frame is a typed envelope; requests
// the daemon cannot decode are answered with structured errors, and the
// connection is dropped only when the stream itself can no longer be
// trusted (oversize or truncated frames).
//
// Besides the data-plane ops the daemon serves a control plane
// (capability "admin"): live scheduler reconfiguration, cache-policy
// swaps, context registration/deregistration and per-context
// drain/resume — all without a restart.
//
// Readiness notifications ride the Virtualizer's notify hub: handlers
// subscribe to the files' (context, step) topics first and then query
// FileState, so no wakeup is lost and no waiter list is scanned under the
// Virtualizer's shard locks.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simfs/internal/core"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/netproto"
	"simfs/internal/notify"
	"simfs/internal/sched"
)

// PeerNotifier is the federation seam: subscribeFiles hands files that
// are neither resident nor promised locally to it, and it watches them
// on peer daemons, republishing their ready/failed events into the
// local notify hub. *fed.Bridge implements it; a daemon without one
// keeps the strictly-local behavior (per-file not_produced replies).
type PeerNotifier interface {
	// WatchRemote registers interest in the files on every peer daemon.
	// The returned cancel withdraws the interest; it is never nil and is
	// safe to call more than once.
	WatchRemote(ctxName string, files []string) (cancel func())
	// PeerInfos lists the outbound peer links for the peers op.
	PeerInfos() []netproto.PeerInfo
}

// ContextRegistrar provisions and retires simulation contexts at
// runtime: it owns whatever surrounds the Virtualizer registration —
// storage areas, launcher wiring, the initial simulation. *Stack
// implements it; a bare Server without one refuses ctx-register with
// CodeUnsupported and falls back to plain Virtualizer removal for
// ctx-deregister.
type ContextRegistrar interface {
	// RegisterContext adds a context (creating its storage area) and, if
	// initialSim is set, runs the initial simulation so restart files and
	// original checksums exist before clients arrive.
	RegisterContext(ctx *model.Context, policy string, initialSim bool) error
	// DeregisterContext removes a drained context, keeping its storage
	// area on disk.
	DeregisterContext(name string) error
}

// Server is the DV daemon front-end.
type Server struct {
	v  *core.Virtualizer
	ln net.Listener

	// Registrar provisions contexts for ctx-register/ctx-deregister.
	// Optional; NewStack wires the Stack in.
	Registrar ContextRegistrar

	// Peers, when set before Serve (Stack.EnablePeers), federates the
	// daemon: subscriptions to files no local simulation will produce
	// are forwarded to peer daemons instead of failing not_produced.
	Peers PeerNotifier

	// DisableBinary keeps every session on the JSON codec: the daemon
	// stops advertising CapBinary and ignores clients requesting it.
	// Set it before Serve (cmd/simfs-dv's -no-binary flag); it exists
	// for debugging (greppable wire traffic) and as the versioned-JSON
	// baseline in benchmarks and skew tests.
	DisableBinary bool

	// WrapConn, when set before Serve, wraps every accepted connection —
	// the seam fault injectors (faults.ConnPlan) and instrumentation hook
	// into without touching the accept loop.
	WrapConn func(net.Conn) net.Conn

	mu     sync.Mutex
	conns  map[net.Conn]*session
	closed bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)
	// asMu guards asInfo, the autoscale decision ledger: attachment
	// state plus a bounded ring of recent decisions, maintained by
	// autoscale-report and read by autoscale-status (simfs-ctl health).
	asMu   sync.Mutex
	asInfo netproto.AutoscaleInfo
	// lat tracks per-op dispatch service time (the synchronous half of a
	// request — async completions like a wait's ready frame are not
	// attributed here), surfaced through the stats frame.
	lat *metrics.LatencySet
}

// New wraps a Virtualizer. logf may be nil to silence logging.
func New(v *core.Virtualizer, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{v: v, conns: map[net.Conn]*session{}, logf: logf,
		lat: metrics.NewLatencySet(
			netproto.OpOpen, netproto.OpWait, netproto.OpRelease,
			netproto.OpAcquire, netproto.OpEstWait, netproto.OpPrefetch,
			netproto.OpSubscribe, netproto.OpFedWatch, netproto.OpStats,
			netproto.OpPing,
		)}
}

// Listen binds the daemon to addr (e.g. "127.0.0.1:7878"). Use port 0 for
// an ephemeral port; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Close. It returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen") //simfs:allow errcode misuse of the embedding API, never sent over the wire
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if s.WrapConn != nil {
			conn = s.WrapConn(conn)
		}
		sess := &session{
			conn:  conn,
			br:    bufio.NewReaderSize(conn, 32<<10),
			codec: netproto.JSON,
			srv:   s,
			held:  map[string]map[string]int{},
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = sess
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(sess)
		}()
	}
}

// Close stops accepting and shuts down gracefully: every live session's
// pending waits, acquires and subscriptions are failed with a structured
// draining frame, buffered replies are flushed, and only then are the
// connections closed. A client that receives draining knows its request
// was not lost in flight — it can reconnect and retry.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.conns))
	for _, sess := range s.conns {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range sessions {
		sess.drain()
		sess.conn.Close()
	}
	s.wg.Wait()
}

// session is one client connection with a serialized, write-coalescing
// writer.
type session struct {
	conn net.Conn
	// br buffers reads; the read loop peeks it (netproto.FrameBuffered)
	// to answer a whole pipelined batch before flushing once.
	br *bufio.Reader
	// codec frames this session's traffic. It starts as JSON and may
	// switch to Binary right after the hello response is encoded; only
	// the read loop's goroutine reads it outside wmu.
	codec netproto.Codec

	wmu sync.Mutex
	// wbuf accumulates encoded response frames between flushes. Every
	// EncodeFrame appends a complete frame with a single Write, so the
	// buffer never holds a torn frame.
	wbuf bytes.Buffer
	srv  *Server
	// client is the client name declared in the hello handshake,
	// remembered so references can be cleaned up on disconnect.
	client string
	// version is the negotiated protocol version (0 before the hello).
	version int
	// held tracks open references (context → files → count) for
	// disconnect cleanup: a crashed analysis must not pin files forever.
	held map[string]map[string]int
	// mu guards subs: live hub subscriptions by request ID, closed on
	// unsubscribe and on disconnect so their pump goroutines exit.
	mu   sync.Mutex
	subs map[uint64]*notify.Sub
	// fedMu guards fedWatches: live fed-watch subscriptions by request
	// ID, tracked separately from subs so the peers op can report the
	// inbound federation ledger (live topics, forwarded events) per
	// peer session. fedEvents counts events forwarded over this link.
	fedMu      sync.Mutex
	fedWatches map[uint64]*fileWatch
	fedEvents  atomic.Uint64
}

// addFedWatch registers a live fed-watch for the inbound peer ledger.
func (sess *session) addFedWatch(id uint64, w *fileWatch) {
	sess.fedMu.Lock()
	if sess.fedWatches == nil {
		sess.fedWatches = map[uint64]*fileWatch{}
	}
	sess.fedWatches[id] = w
	sess.fedMu.Unlock()
}

// dropFedWatch forgets a fed-watch once its pump ends.
func (sess *session) dropFedWatch(id uint64) {
	sess.fedMu.Lock()
	delete(sess.fedWatches, id)
	sess.fedMu.Unlock()
}

// addSub registers a live subscription for cleanup.
func (sess *session) addSub(id uint64, sub *notify.Sub) {
	sess.mu.Lock()
	if sess.subs == nil {
		sess.subs = map[uint64]*notify.Sub{}
	}
	sess.subs[id] = sub
	sess.mu.Unlock()
}

// dropSub forgets (and returns) a subscription.
func (sess *session) dropSub(id uint64) *notify.Sub {
	sess.mu.Lock()
	sub := sess.subs[id]
	delete(sess.subs, id)
	sess.mu.Unlock()
	return sub
}

// drain performs the graceful half of shutdown for one session: every
// pending wait/acquire/subscribe request is answered with a terminal
// draining frame (so the client's call returns with a retryable error
// instead of a dead connection), and the coalesced reply buffer is
// flushed so nothing the dispatch loop already answered is lost.
func (sess *session) drain() {
	sess.mu.Lock()
	ids := make([]uint64, 0, len(sess.subs))
	subs := make([]*notify.Sub, 0, len(sess.subs))
	for id, sub := range sess.subs {
		ids = append(ids, id)
		subs = append(subs, sub)
	}
	sess.subs = nil
	sess.mu.Unlock()
	// Close the subscriptions first so their pump goroutines stop sending;
	// then the draining frames below are the last word on each request ID.
	for _, sub := range subs {
		sub.Close()
	}
	for _, id := range ids {
		sess.reply(netproto.Response{ID: id, Code: netproto.CodeDraining,
			Err: "daemon shutting down", Done: true})
	}
	sess.flush()
}

// closeSubs closes every live subscription (disconnect cleanup).
func (sess *session) closeSubs() {
	sess.mu.Lock()
	subs := make([]*notify.Sub, 0, len(sess.subs))
	for _, sub := range sess.subs {
		subs = append(subs, sub)
	}
	sess.subs = nil
	sess.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// send encodes the response and flushes it to the connection
// immediately. It is the path for asynchronous pushes (wait finishers,
// acquire/subscribe pumps): those run off the read loop's goroutine, so
// nothing else would flush their frames.
func (s *session) send(resp netproto.Response) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.enqueueLocked(resp) {
		s.flushLocked()
	}
}

// reply encodes the response into the session's write buffer without
// flushing. The read loop flushes before its next blocking read, so a
// pipelined batch of requests is answered with one write syscall.
func (s *session) reply(resp netproto.Response) {
	s.wmu.Lock()
	s.enqueueLocked(resp)
	s.wmu.Unlock()
}

// flush pushes buffered response frames to the connection.
func (s *session) flush() {
	s.wmu.Lock()
	s.flushLocked()
	s.wmu.Unlock()
}

func (s *session) enqueueLocked(resp netproto.Response) bool {
	if err := s.codec.EncodeFrame(&s.wbuf, resp); err != nil {
		// EncodeFrame failures happen before any byte lands in wbuf, so
		// previously buffered frames are still intact.
		s.srv.logf("server: encode for %s: %v", s.conn.RemoteAddr(), err)
		s.conn.Close()
		return false
	}
	return true
}

func (s *session) flushLocked() {
	if s.wbuf.Len() == 0 {
		return
	}
	_, err := s.conn.Write(s.wbuf.Bytes())
	s.wbuf.Reset()
	if err != nil {
		s.srv.logf("server: write to %s: %v", s.conn.RemoteAddr(), err)
		s.conn.Close()
	}
}

// codeOf maps a handler error to its structured wire code. Client
// mistakes are the wrapped sentinels (ErrInvalid and friends);
// everything unclassified — filesystem faults, invariant violations,
// anything a handler did not anticipate — is the daemon's problem and
// classifies as internal, so a client dispatching on the code never
// mistakes a daemon bug for bad input.
//
// The errcode analyzer checks this table: every //simfs:errcode
// sentinel registered in the imported packages must appear in a case.
//
//simfs:errcode-table
func codeOf(err error) netproto.ErrCode {
	var qerr *core.QuarantineError
	switch {
	case errors.As(err, &qerr):
		// Quarantined intervals fail fast; the caller fills the structured
		// Attempts/RetryAfterNs fields from the error.
		return netproto.CodeFailed
	case errors.Is(err, core.ErrUnknownContext):
		return netproto.CodeNoSuchContext
	case errors.Is(err, core.ErrDraining), errors.Is(err, core.ErrBusy):
		return netproto.CodeBusy
	case errors.Is(err, core.ErrNotProduced):
		return netproto.CodeNotProduced
	case errors.Is(err, core.ErrInvalid):
		return netproto.CodeBadRequest
	default:
		return netproto.CodeInternal
	}
}

func (s *Server) handle(sess *session) {
	conn := sess.conn
	defer func() {
		// Replies queued by the final dispatch of a closing session
		// (version rejections, failed hellos) must still reach the peer.
		sess.flush()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// Tear down notification subscriptions, then release references
		// held by the departed client.
		sess.closeSubs()
		for ctx, files := range sess.held {
			for file, n := range files {
				for i := 0; i < n; i++ {
					if err := s.v.Release(sess.client, ctx, file); err != nil {
						break
					}
				}
			}
		}
		// With the references gone, the client's speculative work can be
		// dismantled: queued prefetch jobs are de-queued and running
		// prefetch simulations nobody else waits for are killed.
		if sess.client != "" {
			s.v.ClientDisconnected(sess.client)
		}
	}()
	for {
		var env netproto.Envelope
		if err := sess.codec.DecodeFrame(sess.br, &env); err != nil {
			var fe *netproto.FrameError
			if errors.As(err, &fe) && fe.Recoverable {
				// A complete frame with an undecodable payload: the
				// stream is still aligned, so answer instead of dropping
				// the connection.
				sess.send(netproto.Response{ID: fe.ID, Code: netproto.CodeFrame, Err: err.Error()})
				continue
			}
			if err != io.EOF {
				s.logf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if sess.version == 0 && env.Op != netproto.OpHello {
			// No handshake: a pre-versioned (v1) client or a foreign
			// peer. Reject with a structured error it can surface, then
			// close — nothing else it sends can be interpreted safely.
			sess.send(netproto.Response{ID: env.ID, Code: netproto.CodeVersion,
				Err: fmt.Sprintf("protocol handshake required: first frame must be %q (daemon speaks protocol %d)",
					netproto.OpHello, netproto.ProtoVersion)})
			return
		}
		t0 := time.Now() //simfs:allow wallclock live daemon service-time stamps feed the latency histograms, not the simulation
		open := s.dispatch(sess, env)
		s.lat.Record(env.Op, time.Since(t0)) //simfs:allow wallclock live daemon service-time stamps feed the latency histograms, not the simulation
		if !open {
			return
		}
		// Flush batched replies only when the next read would block: a
		// pipelined client's remaining frames are answered into the same
		// buffer first. FrameBuffered insists on a complete frame, so a
		// half-received one cannot deadlock both sides.
		if !netproto.FrameBuffered(sess.br) {
			sess.flush()
		}
	}
}

// dispatch serves one envelope; it reports whether the connection should
// stay open.
func (s *Server) dispatch(sess *session, env netproto.Envelope) bool {
	id := env.ID
	fail := func(err error) {
		resp := netproto.Response{ID: id, Code: codeOf(err), Err: err.Error()}
		var qerr *core.QuarantineError
		if errors.As(err, &qerr) {
			resp.Attempts = qerr.Attempts
			resp.RetryAfterNs = int64(qerr.RetryAfter)
		}
		sess.reply(resp)
	}
	// decode unmarshals the typed body, answering a structured
	// bad-request (with the op and request ID wrapped in) on failure.
	decode := func(v any) bool {
		if err := env.Decode(v); err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return false
		}
		return true
	}

	switch env.Op {
	case netproto.OpHello:
		if sess.version != 0 {
			// A second hello would rewrite the session's client identity
			// under running wait/pump goroutines and orphan the first
			// client's per-shard state at disconnect cleanup.
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest,
				Err: "duplicate hello: the handshake already completed"})
			return true
		}
		var hb netproto.HelloBody
		if !decode(&hb) {
			return true
		}
		if hb.Version < netproto.MinProtoVersion {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeVersion,
				Err: fmt.Sprintf("peer speaks protocol %d; daemon requires %d..%d",
					hb.Version, netproto.MinProtoVersion, netproto.ProtoVersion)})
			return false
		}
		ver := hb.Version
		if ver > netproto.ProtoVersion {
			// A newer client downgrades to our version.
			ver = netproto.ProtoVersion
		}
		sess.version = ver
		sess.client = hb.Client
		caps := []string{netproto.CapAdmin, netproto.CapWatch, netproto.CapPreempt, netproto.CapFed, netproto.CapAutoscale}
		useBinary := false
		if !s.DisableBinary {
			caps = append(caps, netproto.CapBinary)
			// The binary fast path needs both protocol ≥ 3 and the
			// client's explicit request; a v2 or JSON-only peer keeps the
			// session on JSON with nothing to negotiate.
			useBinary = ver >= 3 && hasCapability(hb.Caps, netproto.CapBinary)
		}
		sess.reply(netproto.Response{ID: id, OK: true, Proto: &netproto.HelloInfo{
			Version: ver,
			Caps:    caps,
		}})
		if useBinary {
			// The hello response is already JSON-encoded in the reply
			// buffer (encoding happens at reply time), so flipping the
			// codec here cannot reframe it; everything after speaks
			// binary on both directions.
			sess.wmu.Lock()
			sess.codec = netproto.Binary
			sess.wmu.Unlock()
		}

	case netproto.OpPing:
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpContexts:
		sess.reply(netproto.Response{ID: id, OK: true, Names: s.v.ContextNames()})

	case netproto.OpContextInfo:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		ctx, ok := s.v.Context(b.Context)
		if !ok {
			fail(fmt.Errorf("%w %q", core.ErrUnknownContext, b.Context))
			return true
		}
		policy, _ := s.v.CachePolicyName(b.Context)
		draining, _ := s.v.Draining(b.Context)
		sess.reply(netproto.Response{ID: id, OK: true, Info: &netproto.ContextInfo{
			Name:        ctx.Name,
			StorageDir:  ctx.StorageDir,
			FilePrefix:  ctx.FilePrefix,
			FileSuffix:  ctx.FileSuffix,
			DeltaD:      ctx.Grid.DeltaD,
			DeltaR:      ctx.Grid.DeltaR,
			Timesteps:   ctx.Grid.Timesteps,
			OutputBytes: ctx.OutputBytes,
			Policy:      policy,
			Draining:    draining,
		}})

	case netproto.OpOpen:
		var b netproto.FileBody
		if !decode(&b) {
			return true
		}
		res, err := s.v.Open(sess.client, b.Context, b.File)
		if err != nil {
			fail(err)
			return true
		}
		sess.trackRef(b.Context, b.File, +1)
		sess.reply(netproto.Response{ID: id, OK: true, Available: res.Available, EstWaitNs: int64(res.EstWait)})

	case netproto.OpWait:
		var b netproto.FileBody
		if !decode(&b) {
			return true
		}
		if err := s.waitFile(sess, id, b.Context, b.File); err != nil {
			fail(err)
		}

	case netproto.OpRelease:
		var b netproto.FileBody
		if !decode(&b) {
			return true
		}
		if err := s.v.Release(sess.client, b.Context, b.File); err != nil {
			fail(err)
			return true
		}
		sess.trackRef(b.Context, b.File, -1)
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpAcquire:
		var b netproto.FilesBody
		if !decode(&b) {
			return true
		}
		if len(b.Files) == 0 {
			fail(fmt.Errorf("%w: acquire requires at least one file", core.ErrInvalid))
			return true
		}
		// Per-file readiness notifications let the client implement
		// Waitsome/Testsome; the fan-in below sends the final frame.
		if err := s.acquireWithPerFile(sess, id, b.Context, append([]string(nil), b.Files...)); err != nil {
			fail(err)
		}

	case netproto.OpEstWait:
		var b netproto.FileBody
		if !decode(&b) {
			return true
		}
		w, err := s.v.EstWait(b.Context, b.File)
		if err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true, EstWaitNs: int64(w)})

	case netproto.OpBitrep:
		var b netproto.FileBody
		if !decode(&b) {
			return true
		}
		content, err := s.readStorage(b.Context, b.File)
		if err != nil {
			fail(err)
			return true
		}
		same, err := s.v.Bitrep(b.Context, b.File, content)
		if err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true, Flag: same})

	case netproto.OpRegSum:
		var b netproto.ChecksumBody
		if !decode(&b) {
			return true
		}
		if err := s.v.RegisterChecksum(b.Context, b.File, b.Sum); err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpStats:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		st, err := s.v.Stats(b.Context)
		if err != nil {
			fail(err)
			return true
		}
		ls, _ := s.v.LockStats(b.Context)
		ss := s.v.SchedStats()
		retries, quarantined, _ := s.v.RetryStats(b.Context)
		// The context resolved above, so the control-plane state lookups
		// cannot fail; reporting them closes the loop for operators who
		// just issued a drain or cache-policy-set.
		draining, _ := s.v.Draining(b.Context)
		policy, _ := s.v.CachePolicyName(b.Context)
		sess.reply(netproto.Response{ID: id, OK: true, Stats: &netproto.Stats{
			Opens: st.Opens, Hits: st.Hits, Misses: st.Misses,
			Restarts: st.Restarts, DemandRestarts: st.DemandRestarts,
			PrefetchLaunches: st.PrefetchLaunches, DroppedPrefetch: st.DroppedPrefetch,
			StepsProduced: st.StepsProduced, Evictions: st.Evictions,
			Kills: st.Kills, Failures: st.Failures, PollutionResets: st.PollutionResets,
			Draining: draining, CachePolicy: policy,
			LockAcquisitions: ls.Acquisitions, LockContended: ls.Contended,
			LockWaitNs:      int64(ls.Wait),
			SchedQueueDepth: ss.QueueDepth, SchedCoalesced: ss.Coalesced,
			SchedDropped: ss.Dropped, SchedCanceled: ss.Canceled,
			SchedDemandWaitNs: int64(ss.DemandWait.Wait),
			SchedGuidedWaitNs: int64(ss.GuidedWait.Wait),
			SchedAgentWaitNs:  int64(ss.AgentWait.Wait),
			SchedPreempted:    ss.Preempted,
			SchedQuotaRounds:  ss.QuotaRounds, SchedQuotaDeferred: ss.QuotaDeferred,
			SchedPromoted:    ss.Promoted,
			SchedRetries:     uint64(retries),
			SchedQuarantined: uint64(quarantined),
			SchedClientLoads: s.v.Scheduler().ClientLoads(),
			Ops:              opLatencies(s.lat.Summaries()),
		}})

	case netproto.OpPrefetch:
		var b netproto.FilesBody
		if !decode(&b) {
			return true
		}
		if len(b.Files) == 0 {
			fail(fmt.Errorf("%w: prefetch requires at least one file", core.ErrInvalid))
			return true
		}
		n, err := s.v.GuidedPrefetch(sess.client, b.Context, b.Files)
		if err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true, Count: n})

	case netproto.OpRescan:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		n, err := s.v.RescanStorageArea(b.Context)
		if err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true, Count: n})

	case netproto.OpSubscribe:
		var b netproto.FilesBody
		if !decode(&b) {
			return true
		}
		if len(b.Files) == 0 {
			fail(fmt.Errorf("%w: subscribe requires at least one file", core.ErrInvalid))
			return true
		}
		if err := s.subscribeFiles(sess, id, b.Context, b.Files); err != nil {
			fail(err)
		}

	case netproto.OpFedWatch:
		var b netproto.FilesBody
		if !decode(&b) {
			return true
		}
		if len(b.Files) == 0 {
			fail(fmt.Errorf("%w: fed-watch requires at least one file", core.ErrInvalid))
			return true
		}
		if err := s.fedWatchFiles(sess, id, b.Context, b.Files); err != nil {
			fail(err)
		}

	case netproto.OpPeers:
		var infos []netproto.PeerInfo
		if s.Peers != nil {
			infos = append(infos, s.Peers.PeerInfos()...)
		}
		infos = append(infos, s.inboundPeerInfos()...)
		sess.reply(netproto.Response{ID: id, OK: true, Peers: infos})

	case netproto.OpUnsubscribe:
		var b netproto.UnsubscribeBody
		if !decode(&b) {
			return true
		}
		if sub := sess.dropSub(b.SubID); sub != nil {
			sub.Close()
		}
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpSchedGet:
		cfg := s.v.SchedConfig()
		sess.reply(netproto.Response{ID: id, OK: true, Sched: schedInfo(cfg)})

	case netproto.OpSchedSet:
		var b netproto.SchedSetBody
		if !decode(&b) {
			return true
		}
		// Validation happens in full before any field is applied: a
		// sched-set is atomic — either every knob lands or none does.
		if b.TotalNodes != nil && *b.TotalNodes < 0 {
			fail(fmt.Errorf("%w: total_nodes must be ≥ 0, got %d", core.ErrInvalid, *b.TotalNodes))
			return true
		}
		if b.DRRQuantum != nil && *b.DRRQuantum < 0 {
			fail(fmt.Errorf("%w: drr_quantum must be ≥ 0, got %d", core.ErrInvalid, *b.DRRQuantum))
			return true
		}
		if b.PreemptSunkCost != nil && (*b.PreemptSunkCost < 0 || *b.PreemptSunkCost > 1) {
			fail(fmt.Errorf("%w: preempt_sunk_cost must be in [0,1], got %g", core.ErrInvalid, *b.PreemptSunkCost))
			return true
		}
		var preempt sched.PreemptPolicy
		if b.PreemptPolicy != nil {
			var err error
			if preempt, err = sched.ParsePreemptPolicy(*b.PreemptPolicy); err != nil {
				fail(fmt.Errorf("%w: %v", core.ErrInvalid, err))
				return true
			}
		}
		// The partial update merges atomically under the scheduler's
		// mutex: concurrent sched-sets compose instead of overwriting
		// each other's fields with stale reads.
		cfg := s.v.UpdateSchedConfig(func(cfg sched.Config) sched.Config {
			if b.Coalesce != nil {
				cfg.Coalesce = *b.Coalesce
			}
			if b.Priorities != nil {
				cfg.Priorities = *b.Priorities
			}
			if b.TotalNodes != nil {
				cfg.TotalNodes = *b.TotalNodes
			}
			if b.PreemptPolicy != nil {
				cfg.Preempt = preempt
			}
			if b.DRRQuantum != nil {
				cfg.DRRQuantum = *b.DRRQuantum
			}
			if b.PreemptSunkCost != nil {
				cfg.PreemptSunkCost = *b.PreemptSunkCost
			}
			if b.PreemptGuided != nil {
				cfg.PreemptGuided = *b.PreemptGuided
			}
			if b.DemandJoin != nil {
				cfg.DemandJoin = *b.DemandJoin
			}
			return cfg
		})
		s.logf("server: scheduler reconfigured by %s: coalesce=%v priorities=%v nodes=%d preempt=%s quantum=%d sunkcost=%g guided=%v demandjoin=%v",
			sess.client, cfg.Coalesce, cfg.Priorities, cfg.TotalNodes, cfg.Preempt, cfg.DRRQuantum,
			cfg.PreemptSunkCost, cfg.PreemptGuided, cfg.DemandJoin)
		sess.reply(netproto.Response{ID: id, OK: true, Sched: schedInfo(cfg)})

	case netproto.OpCachePolicySet:
		var b netproto.CachePolicyBody
		if !decode(&b) {
			return true
		}
		if err := s.v.SetCachePolicy(b.Context, b.Policy); err != nil {
			fail(err)
			return true
		}
		s.logf("server: context %s cache policy swapped to %s by %s", b.Context, b.Policy, sess.client)
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpDrain:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		if err := s.v.Drain(b.Context); err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpResume:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		if err := s.v.Resume(b.Context); err != nil {
			fail(err)
			return true
		}
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpQuarantineReset:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		n, err := s.v.ResetQuarantine(b.Context)
		if err != nil {
			fail(err)
			return true
		}
		if b.Context == "" {
			s.logf("server: quarantine reset on all contexts by %s (%d released)", sess.client, n)
		} else {
			s.logf("server: quarantine reset on context %s by %s (%d released)", b.Context, sess.client, n)
		}
		sess.reply(netproto.Response{ID: id, OK: true, Count: n})

	case netproto.OpAutoscaleReport:
		var b netproto.AutoscaleReportBody
		if !decode(&b) {
			return true
		}
		s.asMu.Lock()
		s.asInfo.Active = b.Active
		if b.Active {
			s.asInfo.Source = sess.client
			s.asInfo.Policies = b.Policies
		} else {
			// Detachment keeps the decision trail (health still shows
			// what the controller last did) but clears the live state.
			s.asInfo.Policies = nil
		}
		s.asInfo.Decisions = append(s.asInfo.Decisions, b.Decisions...)
		if n := len(s.asInfo.Decisions); n > autoscaleLogCap {
			s.asInfo.Decisions = append([]netproto.AutoscaleDecision(nil),
				s.asInfo.Decisions[n-autoscaleLogCap:]...)
		}
		s.asMu.Unlock()
		sess.reply(netproto.Response{ID: id, OK: true, Count: len(b.Decisions)})

	case netproto.OpAutoscaleStatus:
		s.asMu.Lock()
		info := s.asInfo
		info.Policies = append([]string(nil), s.asInfo.Policies...)
		info.Decisions = append([]netproto.AutoscaleDecision(nil), s.asInfo.Decisions...)
		s.asMu.Unlock()
		sess.reply(netproto.Response{ID: id, OK: true, Autoscale: &info})

	case netproto.OpCtxRegister:
		var b netproto.CtxRegisterBody
		if !decode(&b) {
			return true
		}
		if b.Context == nil {
			fail(fmt.Errorf("%w: ctx-register requires a context definition", core.ErrInvalid))
			return true
		}
		if s.Registrar == nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeUnsupported,
				Err: "this daemon has no context registrar (storage provisioning unavailable)"})
			return true
		}
		if err := s.Registrar.RegisterContext(b.Context, b.Policy, b.InitialSim); err != nil {
			fail(err)
			return true
		}
		s.logf("server: context %s registered by %s (policy %s)", b.Context.Name, sess.client, b.Policy)
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpCtxDeregister:
		var b netproto.CtxBody
		if !decode(&b) {
			return true
		}
		var err error
		if s.Registrar != nil {
			err = s.Registrar.DeregisterContext(b.Context)
		} else {
			err = s.v.RemoveContext(b.Context)
		}
		if err != nil {
			fail(err)
			return true
		}
		s.logf("server: context %s deregistered by %s", b.Context, sess.client)
		sess.reply(netproto.Response{ID: id, OK: true})

	default:
		sess.reply(netproto.Response{ID: id, Code: netproto.CodeUnsupported,
			Err: fmt.Sprintf("unknown op %q", env.Op)})
	}
	return true
}

// autoscaleLogCap bounds the daemon-side autoscale decision ring: enough
// recent history for simfs-ctl health, never an unbounded ledger.
const autoscaleLogCap = 64

// hasCapability reports whether caps contains want.
func hasCapability(caps []string, want string) bool {
	for _, c := range caps {
		if c == want {
			return true
		}
	}
	return false
}

// schedInfo mirrors a scheduler config onto the wire. The fieldsync
// analyzer holds it to SchedInfo's full field list, so a new knob
// cannot ship half-mirrored.
//
//simfs:sync netproto.SchedInfo
func schedInfo(cfg sched.Config) *netproto.SchedInfo {
	return &netproto.SchedInfo{
		Coalesce: cfg.Coalesce, Priorities: cfg.Priorities, TotalNodes: cfg.TotalNodes,
		PreemptPolicy: cfg.Preempt.String(), DRRQuantum: cfg.DRRQuantum,
		PreemptSunkCost: cfg.PreemptSunkCost, PreemptGuided: cfg.PreemptGuided,
		DemandJoin: cfg.DemandJoin,
	}
}

// opLatencies mirrors per-op latency summaries onto the wire.
func opLatencies(sums []metrics.OpLatency) []netproto.OpLatency {
	if len(sums) == 0 {
		return nil
	}
	out := make([]netproto.OpLatency, len(sums))
	for i, l := range sums {
		out[i] = netproto.OpLatency{Op: l.Op, Count: l.Count,
			P50Ns: int64(l.P50), P99Ns: int64(l.P99)}
	}
	return out
}

// inboundPeerInfos reports the inbound half of the federation ledger:
// one entry per connected session that carries fed-watch traffic, with
// its live topic count and the events forwarded over the link.
func (s *Server) inboundPeerInfos() []netproto.PeerInfo {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.conns))
	for _, sess := range s.conns {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var infos []netproto.PeerInfo
	for _, sess := range sessions {
		topics := 0
		sess.fedMu.Lock()
		for _, w := range sess.fedWatches {
			topics += int(w.pending.Load())
		}
		sess.fedMu.Unlock()
		events := sess.fedEvents.Load()
		if topics == 0 && events == 0 {
			continue
		}
		infos = append(infos, netproto.PeerInfo{
			Addr: sess.conn.RemoteAddr().String(), Role: "in",
			Connected: true, Topics: topics, Events: events,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Addr < infos[j].Addr })
	return infos
}

// waitFile implements OpWait on the notify hub: subscribe to the file's
// topic, then check its state — any event published after the
// subscription is buffered, so no wakeup is lost.
func (s *Server) waitFile(sess *session, id uint64, ctxName, file string) error {
	topic, err := s.v.FileTopic(ctxName, file)
	if err != nil {
		return err
	}
	sub := s.v.Hub().Subscribe(topic)
	resident, promised, err := s.v.FileState(ctxName, file)
	if err != nil {
		sub.Close()
		return err
	}
	if resident {
		sub.Close()
		sess.reply(netproto.Response{ID: id, OK: true, Ready: true, Done: true, File: file})
		return nil
	}
	// finish may run on the waiter goroutine, off the read loop: it must
	// flush its own frame (send), not leave it in the reply buffer.
	finish := func(ev notify.Event) {
		resp := netproto.Response{ID: id, OK: ev.Err == "", Err: ev.Err,
			Ready: ev.Kind == notify.FileReady, Done: true, File: file}
		if ev.Err != "" {
			resp.Code = netproto.CodeFailed
			resp.Attempts = ev.Attempts
			resp.RetryAfterNs = ev.RetryAfter
		}
		sess.send(resp)
	}
	if !promised {
		// The producing simulation may have resolved the file between
		// Subscribe and FileState; the event would be buffered.
		select {
		case ev := <-sub.C():
			sub.Close()
			finish(ev)
			return nil
		default:
			sub.Close()
			return fmt.Errorf("%w: %q is neither on disk nor promised; call open or acquire first",
				core.ErrNotProduced, file)
		}
	}
	sess.addSub(id, sub)
	go func() {
		defer sess.dropSub(id)
		if ev, ok := <-sub.C(); ok {
			if ev.Kind == notify.FileReady {
				s.v.NoteClientReady(sess.client, ctxName, file)
			}
			finish(ev)
			sub.Close()
		}
	}()
	return nil
}

// fileWatch is the shared subscribe-then-check machinery of OpAcquire and
// OpSubscribe: per-file readiness streamed over the connection, a final
// Done frame once every file has resolved.
type fileWatch struct {
	srv      *Server
	client   string
	ctxName  string
	sub      *notify.Sub
	names    map[notify.Topic]string // topic → file, for frame rendering
	resolved map[notify.Topic]bool
	// pending is atomic only so the peers op can read a live fed-watch's
	// remaining topic count; pump is the sole writer.
	pending atomic.Int64
	// fed marks an inbound fed-watch (peer daemon subscription): its
	// resolutions count into the session's forwarded-events ledger.
	fed bool
}

// watchTopics subscribes to every file's topic. The caller resolves the
// initial states before pumping events.
func (s *Server) watchTopics(client, ctxName string, files []string) (*fileWatch, error) {
	topics := make([]notify.Topic, len(files))
	for i, f := range files {
		t, err := s.v.FileTopic(ctxName, f)
		if err != nil {
			return nil, err
		}
		topics[i] = t
	}
	w := &fileWatch{
		srv:      s,
		client:   client,
		ctxName:  ctxName,
		names:    make(map[notify.Topic]string, len(files)),
		resolved: map[notify.Topic]bool{},
	}
	for i, t := range topics {
		w.names[t] = files[i]
	}
	w.sub = s.v.Hub().Subscribe(topics...)
	return w, nil
}

// pump streams buffered and future events as per-file frames until every
// topic has resolved, then sends the Done frame. failFast terminates the
// stream on the first failure (OpAcquire's legacy contract); otherwise
// each file resolves individually and Done still arrives (OpSubscribe).
func (w *fileWatch) pump(sess *session, reqID uint64, failFast bool) {
	defer sess.dropSub(reqID)
	for ev := range w.sub.C() {
		f, ok := w.names[ev.Topic]
		if !ok || w.resolved[ev.Topic] {
			continue
		}
		w.resolved[ev.Topic] = true
		w.pending.Add(-1)
		if w.fed {
			sess.fedEvents.Add(1)
		}
		if ev.Kind == notify.FileFailed {
			resp := netproto.Response{ID: reqID, Code: netproto.CodeFailed, Err: ev.Err, File: f,
				Attempts: ev.Attempts, RetryAfterNs: ev.RetryAfter}
			if failFast {
				resp.Done = true
				sess.send(resp)
				w.sub.Close()
				return
			}
			sess.send(resp)
		} else {
			// The client was blocked on this file: reset its τcli
			// baseline, as the in-process waiter path does.
			w.srv.v.NoteClientReady(w.client, w.ctxName, f)
			sess.send(netproto.Response{ID: reqID, OK: true, Ready: true, File: f})
		}
		if w.pending.Load() == 0 {
			sess.send(netproto.Response{ID: reqID, OK: true, Done: true})
			w.sub.Close()
			return
		}
	}
}

// acquireWithPerFile implements the acquire subscription: references are
// taken via Open (starting re-simulations), then readiness rides the
// notify hub — a per-file ready frame for each missing file plus a final
// done frame.
func (s *Server) acquireWithPerFile(sess *session, id uint64, ctxName string, files []string) error {
	w, err := s.watchTopics(sess.client, ctxName, files)
	if err != nil {
		return err
	}
	// Open every file (taking references) so re-simulations start.
	for i, f := range files {
		res, err := s.v.Open(sess.client, ctxName, f)
		if err != nil {
			// Roll back references taken so far, including the
			// disconnect-cleanup bookkeeping.
			for _, g := range files[:i] {
				_ = s.v.Release(sess.client, ctxName, g)
				sess.trackRef(ctxName, g, -1)
			}
			w.sub.Close()
			return err
		}
		sess.trackRef(ctxName, f, +1)
		if res.Available {
			topic, _ := s.v.FileTopic(ctxName, f)
			if !w.resolved[topic] {
				w.resolved[topic] = true
				sess.reply(netproto.Response{ID: id, OK: true, Ready: true, File: f})
			}
		}
	}
	// A missing file may have been produced between Open and now; its
	// event is buffered in the subscription, so only count what is still
	// unresolved and let pump drain the buffer.
	w.pending.Store(int64(len(w.names) - len(w.resolved)))
	if w.pending.Load() == 0 {
		sess.reply(netproto.Response{ID: id, OK: true, Done: true})
		w.sub.Close()
		return nil
	}
	sess.addSub(id, w.sub)
	go w.pump(sess, id, true)
	return nil
}

// subscribeFiles implements OpSubscribe: notification-only readiness
// frames with no references taken. Files must be resident or promised;
// files that are neither resolve immediately with a per-file error
// frame — unless the daemon is federated, in which case they stay
// pending and the bridge watches them on the peer daemons (the local
// hub republishes whatever a peer produces, so the pump below resolves
// them exactly like local productions).
func (s *Server) subscribeFiles(sess *session, id uint64, ctxName string, files []string) error {
	w, err := s.watchTopics(sess.client, ctxName, files)
	if err != nil {
		return err
	}
	var remote []string
	for _, f := range files {
		topic, _ := s.v.FileTopic(ctxName, f)
		if w.resolved[topic] {
			continue
		}
		resident, promised, err := s.v.FileState(ctxName, f)
		if err != nil {
			w.sub.Close()
			return err
		}
		switch {
		case resident:
			w.resolved[topic] = true
			sess.reply(netproto.Response{ID: id, OK: true, Ready: true, File: f})
		case !promised:
			// Not being produced — unless its event raced into the
			// subscription buffer, which pump will deliver.
			if !bufferedEvent(w.sub, topic) {
				if s.Peers != nil {
					remote = append(remote, f)
				} else {
					w.resolved[topic] = true
					sess.reply(netproto.Response{ID: id, Code: netproto.CodeNotProduced,
						Err: "file is not being produced", File: f})
				}
			}
		}
	}
	w.pending.Store(int64(len(w.names) - len(w.resolved)))
	if w.pending.Load() == 0 {
		sess.reply(netproto.Response{ID: id, OK: true, Done: true})
		w.sub.Close()
		return nil
	}
	var cancelRemote func()
	if len(remote) > 0 {
		cancelRemote = s.Peers.WatchRemote(ctxName, remote)
	}
	sess.addSub(id, w.sub)
	go func() {
		w.pump(sess, id, false)
		if cancelRemote != nil {
			cancelRemote()
		}
	}()
	return nil
}

// fedWatchFiles implements OpFedWatch, the daemon↔daemon subscribe
// variant behind the fed capability. Unlike subscribe it keeps files
// nobody has promised yet pending — the remote daemon's producer may
// only be asked later — and it never consults s.Peers, so a peer mesh
// cannot forward an interest in circles: every interest bounces at
// most once, from the daemon the client asked to the producing peer.
func (s *Server) fedWatchFiles(sess *session, id uint64, ctxName string, files []string) error {
	w, err := s.watchTopics(sess.client, ctxName, files)
	if err != nil {
		return err
	}
	for _, f := range files {
		topic, _ := s.v.FileTopic(ctxName, f)
		if w.resolved[topic] {
			continue
		}
		resident, _, err := s.v.FileState(ctxName, f)
		if err != nil {
			w.sub.Close()
			return err
		}
		if resident {
			w.resolved[topic] = true
			sess.reply(netproto.Response{ID: id, OK: true, Ready: true, File: f})
		}
	}
	w.pending.Store(int64(len(w.names) - len(w.resolved)))
	if w.pending.Load() == 0 {
		sess.reply(netproto.Response{ID: id, OK: true, Done: true})
		w.sub.Close()
		return nil
	}
	w.fed = true
	sess.addSub(id, w.sub)
	sess.addFedWatch(id, w)
	go func() {
		w.pump(sess, id, false)
		sess.dropFedWatch(id)
	}()
	return nil
}

// bufferedEvent reports whether the subscription already holds an event
// for the topic. The hub's one-shot contract means a delivered topic is
// no longer subscribed, which is exactly the case this probes.
func bufferedEvent(sub *notify.Sub, topic notify.Topic) bool {
	return !sub.Subscribed(topic)
}

// readStorage reads a file's content from the context's storage area.
func (s *Server) readStorage(ctxName, file string) ([]byte, error) {
	fs, err := s.v.StorageArea(ctxName)
	if err != nil {
		return nil, err
	}
	if fs == nil {
		// A registered context without a storage area is a daemon-side
		// misconfiguration, not a client mistake: internal is the right
		// classification, so no sentinel is wrapped.
		return nil, fmt.Errorf("context %q has no storage area", ctxName) //simfs:allow errcode daemon-side invariant breach classifies as internal by design
	}
	return fs.Read(file)
}

func (sess *session) trackRef(ctx, file string, delta int) {
	m := sess.held[ctx]
	if m == nil {
		m = map[string]int{}
		sess.held[ctx] = m
	}
	m[file] += delta
	if m[file] <= 0 {
		delete(m, file)
	}
}
