// Package server implements the DV daemon (paper Sec. III): a TCP server
// exposing the Virtualizer to DVLib clients over the netproto wire
// protocol. Each connection serves one analysis application; waits,
// acquires and subscriptions are answered asynchronously over the same
// connection when re-simulations produce the requested files.
//
// Readiness notifications ride the Virtualizer's notify hub: handlers
// subscribe to the files' (context, step) topics first and then query
// FileState, so no wakeup is lost and no waiter list is scanned under the
// Virtualizer's shard locks.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"simfs/internal/core"
	"simfs/internal/netproto"
	"simfs/internal/notify"
)

// Server is the DV daemon front-end.
type Server struct {
	v  *core.Virtualizer
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
	logf   func(format string, args ...any)
}

// New wraps a Virtualizer. logf may be nil to silence logging.
func New(v *core.Virtualizer, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{v: v, conns: map[net.Conn]bool{}, logf: logf}
}

// Listen binds the daemon to addr (e.g. "127.0.0.1:7878"). Use port 0 for
// an ephemeral port; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Close. It returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// session is one client connection with a serialized writer.
type session struct {
	conn net.Conn
	wmu  sync.Mutex
	srv  *Server
	// client is the peer-declared client name, remembered so references
	// can be cleaned up on disconnect.
	client string
	// held tracks open references (context → files → count) for
	// disconnect cleanup: a crashed analysis must not pin files forever.
	held map[string]map[string]int
	// mu guards subs: live hub subscriptions by request ID, closed on
	// unsubscribe and on disconnect so their pump goroutines exit.
	mu   sync.Mutex
	subs map[uint64]*notify.Sub
}

// addSub registers a live subscription for cleanup.
func (sess *session) addSub(id uint64, sub *notify.Sub) {
	sess.mu.Lock()
	if sess.subs == nil {
		sess.subs = map[uint64]*notify.Sub{}
	}
	sess.subs[id] = sub
	sess.mu.Unlock()
}

// dropSub forgets (and returns) a subscription.
func (sess *session) dropSub(id uint64) *notify.Sub {
	sess.mu.Lock()
	sub := sess.subs[id]
	delete(sess.subs, id)
	sess.mu.Unlock()
	return sub
}

// closeSubs closes every live subscription (disconnect cleanup).
func (sess *session) closeSubs() {
	sess.mu.Lock()
	subs := make([]*notify.Sub, 0, len(sess.subs))
	for _, sub := range sess.subs {
		subs = append(subs, sub)
	}
	sess.subs = nil
	sess.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

func (s *session) send(resp netproto.Response) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := netproto.WriteFrame(s.conn, resp); err != nil {
		s.srv.logf("server: write to %s: %v", s.conn.RemoteAddr(), err)
		s.conn.Close()
	}
}

func (s *Server) handle(conn net.Conn) {
	sess := &session{conn: conn, srv: s, held: map[string]map[string]int{}}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// Tear down notification subscriptions, then release references
		// held by the departed client.
		sess.closeSubs()
		for ctx, files := range sess.held {
			for file, n := range files {
				for i := 0; i < n; i++ {
					if err := s.v.Release(sess.client, ctx, file); err != nil {
						break
					}
				}
			}
		}
		// With the references gone, the client's speculative work can be
		// dismantled: queued prefetch jobs are de-queued and running
		// prefetch simulations nobody else waits for are killed.
		if sess.client != "" {
			s.v.ClientDisconnected(sess.client)
		}
	}()
	for {
		var req netproto.Request
		if err := netproto.ReadFrame(conn, &req); err != nil {
			if err != io.EOF {
				s.logf("server: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if req.Client != "" {
			sess.client = req.Client
		}
		s.dispatch(sess, req)
	}
}

func (s *Server) dispatch(sess *session, req netproto.Request) {
	fail := func(err error) {
		sess.send(netproto.Response{ID: req.ID, Err: err.Error()})
	}
	oneFile := func() (string, bool) {
		if len(req.Files) != 1 {
			fail(fmt.Errorf("op %s requires exactly one file", req.Op))
			return "", false
		}
		return req.Files[0], true
	}

	switch req.Op {
	case netproto.OpPing:
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpContexts:
		sess.send(netproto.Response{ID: req.ID, OK: true, Names: s.v.ContextNames()})

	case netproto.OpContextInfo:
		ctx, ok := s.v.Context(req.Context)
		if !ok {
			fail(fmt.Errorf("unknown context %q", req.Context))
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{
			Name:        ctx.Name,
			StorageDir:  ctx.StorageDir,
			FilePrefix:  ctx.FilePrefix,
			FileSuffix:  ctx.FileSuffix,
			DeltaD:      ctx.Grid.DeltaD,
			DeltaR:      ctx.Grid.DeltaR,
			Timesteps:   ctx.Grid.Timesteps,
			OutputBytes: ctx.OutputBytes,
		}})

	case netproto.OpOpen:
		file, ok := oneFile()
		if !ok {
			return
		}
		res, err := s.v.Open(req.Client, req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		sess.trackRef(req.Context, file, +1)
		sess.send(netproto.Response{ID: req.ID, OK: true, Available: res.Available, EstWaitNs: int64(res.EstWait)})

	case netproto.OpWait:
		file, ok := oneFile()
		if !ok {
			return
		}
		if err := s.waitFile(sess, req, file); err != nil {
			fail(err)
		}

	case netproto.OpRelease:
		file, ok := oneFile()
		if !ok {
			return
		}
		if err := s.v.Release(req.Client, req.Context, file); err != nil {
			fail(err)
			return
		}
		sess.trackRef(req.Context, file, -1)
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpAcquire:
		if len(req.Files) == 0 {
			fail(errors.New("acquire requires at least one file"))
			return
		}
		// Per-file readiness notifications let the client implement
		// Waitsome/Testsome; the fan-in below sends the final frame.
		files := append([]string(nil), req.Files...)
		err := s.acquireWithPerFile(sess, req, files)
		if err != nil {
			fail(err)
		}

	case netproto.OpEstWait:
		file, ok := oneFile()
		if !ok {
			return
		}
		w, err := s.v.EstWait(req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, EstWaitNs: int64(w)})

	case netproto.OpBitrep:
		file, ok := oneFile()
		if !ok {
			return
		}
		content, err := s.readStorage(req.Context, file)
		if err != nil {
			fail(err)
			return
		}
		same, err := s.v.Bitrep(req.Context, file, content)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Flag: same})

	case netproto.OpRegSum:
		file, ok := oneFile()
		if !ok {
			return
		}
		if err := s.v.RegisterChecksum(req.Context, file, req.Sum); err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true})

	case netproto.OpStats:
		st, err := s.v.Stats(req.Context)
		if err != nil {
			fail(err)
			return
		}
		ls, _ := s.v.LockStats(req.Context)
		ss := s.v.SchedStats()
		sess.send(netproto.Response{ID: req.ID, OK: true, Stats: &netproto.Stats{
			Opens: st.Opens, Hits: st.Hits, Misses: st.Misses,
			Restarts: st.Restarts, DemandRestarts: st.DemandRestarts,
			PrefetchLaunches: st.PrefetchLaunches, DroppedPrefetch: st.DroppedPrefetch,
			StepsProduced: st.StepsProduced, Evictions: st.Evictions,
			Kills: st.Kills, Failures: st.Failures, PollutionResets: st.PollutionResets,
			LockAcquisitions: ls.Acquisitions, LockContended: ls.Contended,
			LockWaitNs:      int64(ls.Wait),
			SchedQueueDepth: ss.QueueDepth, SchedCoalesced: ss.Coalesced,
			SchedDropped: ss.Dropped, SchedCanceled: ss.Canceled,
			SchedDemandWaitNs: int64(ss.DemandWait.Wait),
			SchedGuidedWaitNs: int64(ss.GuidedWait.Wait),
			SchedAgentWaitNs:  int64(ss.AgentWait.Wait),
		}})

	case netproto.OpPrefetch:
		if len(req.Files) == 0 {
			fail(errors.New("prefetch requires at least one file"))
			return
		}
		n, err := s.v.GuidedPrefetch(req.Client, req.Context, req.Files)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Count: n})

	case netproto.OpRescan:
		n, err := s.v.RescanStorageArea(req.Context)
		if err != nil {
			fail(err)
			return
		}
		sess.send(netproto.Response{ID: req.ID, OK: true, Count: n})

	case netproto.OpSubscribe:
		if len(req.Files) == 0 {
			fail(errors.New("subscribe requires at least one file"))
			return
		}
		if err := s.subscribeFiles(sess, req, req.Files); err != nil {
			fail(err)
		}

	case netproto.OpUnsubscribe:
		if sub := sess.dropSub(req.SubID); sub != nil {
			sub.Close()
		}
		sess.send(netproto.Response{ID: req.ID, OK: true})

	default:
		fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// waitFile implements OpWait on the notify hub: subscribe to the file's
// topic, then check its state — any event published after the
// subscription is buffered, so no wakeup is lost.
func (s *Server) waitFile(sess *session, req netproto.Request, file string) error {
	topic, err := s.v.FileTopic(req.Context, file)
	if err != nil {
		return err
	}
	sub := s.v.Hub().Subscribe(topic)
	resident, promised, err := s.v.FileState(req.Context, file)
	if err != nil {
		sub.Close()
		return err
	}
	if resident {
		sub.Close()
		sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, Done: true, File: file})
		return nil
	}
	finish := func(ev notify.Event) {
		sess.send(netproto.Response{ID: req.ID, OK: ev.Err == "", Err: ev.Err,
			Ready: ev.Kind == notify.FileReady, Done: true, File: file})
	}
	if !promised {
		// The producing simulation may have resolved the file between
		// Subscribe and FileState; the event would be buffered.
		select {
		case ev := <-sub.C():
			sub.Close()
			finish(ev)
			return nil
		default:
			sub.Close()
			return fmt.Errorf("%q is neither on disk nor being produced; call open or acquire first", file)
		}
	}
	sess.addSub(req.ID, sub)
	go func() {
		defer sess.dropSub(req.ID)
		if ev, ok := <-sub.C(); ok {
			if ev.Kind == notify.FileReady {
				s.v.NoteClientReady(req.Client, req.Context, file)
			}
			finish(ev)
			sub.Close()
		}
	}()
	return nil
}

// fileWatch is the shared subscribe-then-check machinery of OpAcquire and
// OpSubscribe: per-file readiness streamed over the connection, a final
// Done frame once every file has resolved.
type fileWatch struct {
	srv      *Server
	client   string
	ctxName  string
	sub      *notify.Sub
	names    map[notify.Topic]string // topic → file, for frame rendering
	resolved map[notify.Topic]bool
	pending  int
}

// watchTopics subscribes to every file's topic. The caller resolves the
// initial states before pumping events.
func (s *Server) watchTopics(client, ctxName string, files []string) (*fileWatch, error) {
	topics := make([]notify.Topic, len(files))
	for i, f := range files {
		t, err := s.v.FileTopic(ctxName, f)
		if err != nil {
			return nil, err
		}
		topics[i] = t
	}
	w := &fileWatch{
		srv:      s,
		client:   client,
		ctxName:  ctxName,
		names:    make(map[notify.Topic]string, len(files)),
		resolved: map[notify.Topic]bool{},
	}
	for i, t := range topics {
		w.names[t] = files[i]
	}
	w.sub = s.v.Hub().Subscribe(topics...)
	return w, nil
}

// pump streams buffered and future events as per-file frames until every
// topic has resolved, then sends the Done frame. failFast terminates the
// stream on the first failure (OpAcquire's legacy contract); otherwise
// each file resolves individually and Done still arrives (OpSubscribe).
func (w *fileWatch) pump(sess *session, reqID uint64, failFast bool) {
	defer sess.dropSub(reqID)
	for ev := range w.sub.C() {
		f, ok := w.names[ev.Topic]
		if !ok || w.resolved[ev.Topic] {
			continue
		}
		w.resolved[ev.Topic] = true
		w.pending--
		if ev.Kind == notify.FileFailed {
			if failFast {
				sess.send(netproto.Response{ID: reqID, Err: ev.Err, Done: true, File: f})
				w.sub.Close()
				return
			}
			sess.send(netproto.Response{ID: reqID, Err: ev.Err, File: f})
		} else {
			// The client was blocked on this file: reset its τcli
			// baseline, as the in-process waiter path does.
			w.srv.v.NoteClientReady(w.client, w.ctxName, f)
			sess.send(netproto.Response{ID: reqID, OK: true, Ready: true, File: f})
		}
		if w.pending == 0 {
			sess.send(netproto.Response{ID: reqID, OK: true, Done: true})
			w.sub.Close()
			return
		}
	}
}

// acquireWithPerFile implements the acquire subscription: references are
// taken via Open (starting re-simulations), then readiness rides the
// notify hub — a per-file ready frame for each missing file plus a final
// done frame.
func (s *Server) acquireWithPerFile(sess *session, req netproto.Request, files []string) error {
	w, err := s.watchTopics(req.Client, req.Context, files)
	if err != nil {
		return err
	}
	// Open every file (taking references) so re-simulations start.
	for i, f := range files {
		res, err := s.v.Open(req.Client, req.Context, f)
		if err != nil {
			// Roll back references taken so far, including the
			// disconnect-cleanup bookkeeping.
			for _, g := range files[:i] {
				_ = s.v.Release(req.Client, req.Context, g)
				sess.trackRef(req.Context, g, -1)
			}
			w.sub.Close()
			return err
		}
		sess.trackRef(req.Context, f, +1)
		if res.Available {
			topic, _ := s.v.FileTopic(req.Context, f)
			if !w.resolved[topic] {
				w.resolved[topic] = true
				sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
			}
		}
	}
	// A missing file may have been produced between Open and now; its
	// event is buffered in the subscription, so only count what is still
	// unresolved and let pump drain the buffer.
	w.pending = len(w.names) - len(w.resolved)
	if w.pending == 0 {
		sess.send(netproto.Response{ID: req.ID, OK: true, Done: true})
		w.sub.Close()
		return nil
	}
	sess.addSub(req.ID, w.sub)
	go w.pump(sess, req.ID, true)
	return nil
}

// subscribeFiles implements OpSubscribe: notification-only readiness
// frames with no references taken. Files must be resident or promised;
// files that are neither resolve immediately with a per-file error frame.
func (s *Server) subscribeFiles(sess *session, req netproto.Request, files []string) error {
	w, err := s.watchTopics(req.Client, req.Context, files)
	if err != nil {
		return err
	}
	for _, f := range files {
		topic, _ := s.v.FileTopic(req.Context, f)
		if w.resolved[topic] {
			continue
		}
		resident, promised, err := s.v.FileState(req.Context, f)
		if err != nil {
			w.sub.Close()
			return err
		}
		switch {
		case resident:
			w.resolved[topic] = true
			sess.send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
		case !promised:
			// Not being produced — unless its event raced into the
			// subscription buffer, which pump will deliver.
			if !bufferedEvent(w.sub, topic) {
				w.resolved[topic] = true
				sess.send(netproto.Response{ID: req.ID, Err: "file is not being produced", File: f})
			}
		}
	}
	w.pending = len(w.names) - len(w.resolved)
	if w.pending == 0 {
		sess.send(netproto.Response{ID: req.ID, OK: true, Done: true})
		w.sub.Close()
		return nil
	}
	sess.addSub(req.ID, w.sub)
	go w.pump(sess, req.ID, false)
	return nil
}

// bufferedEvent reports whether the subscription already holds an event
// for the topic. The hub's one-shot contract means a delivered topic is
// no longer subscribed, which is exactly the case this probes.
func bufferedEvent(sub *notify.Sub, topic notify.Topic) bool {
	return !sub.Subscribed(topic)
}

// readStorage reads a file's content from the context's storage area.
func (s *Server) readStorage(ctxName, file string) ([]byte, error) {
	fs, err := s.v.StorageArea(ctxName)
	if err != nil {
		return nil, err
	}
	if fs == nil {
		return nil, fmt.Errorf("context %q has no storage area", ctxName)
	}
	return fs.Read(file)
}

func (sess *session) trackRef(ctx, file string, delta int) {
	m := sess.held[ctx]
	if m == nil {
		m = map[string]int{}
		sess.held[ctx] = m
	}
	m[file] += delta
	if m[file] <= 0 {
		delete(m, file)
	}
}
