package server

import (
	"io"
	"net"
	"testing"

	"simfs/internal/dvlib"
	"simfs/internal/netproto"
)

// rawConn dials the daemon without any client library: the tests below
// speak the wire protocol (or the wrong one) by hand.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// A v1 client (no hello, untyped request bag) against the new daemon:
// the first frame is answered with a structured CodeVersion error and
// the connection closes.
func TestVersionSkewOldClientNewDaemon(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	if err := netproto.WriteFrame(conn, netproto.LegacyRequest{ID: 7, Op: netproto.OpPing, Client: "old"}); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 {
		t.Errorf("rejection answered to id %d, want 7", resp.ID)
	}
	if resp.Code != netproto.CodeVersion || resp.Err == "" {
		t.Errorf("old client got %+v, want a CodeVersion error", resp)
	}
	// The daemon closes the connection after the rejection.
	if err := netproto.ReadFrame(conn, &resp); err != io.EOF {
		t.Errorf("connection survived the version rejection: %v", err)
	}
}

// A hello below the daemon's minimum version is rejected with
// CodeVersion too.
func TestVersionSkewTooOldHello(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	env, err := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.MinProtoVersion - 1, Client: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := netproto.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != netproto.CodeVersion {
		t.Errorf("too-old hello got %+v, want CodeVersion", resp)
	}
}

// A newer client downgrades gracefully: the daemon answers with its own
// (lower) version and keeps serving.
func TestVersionSkewNewerClientDowngrades(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	env, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion + 5, Client: "future"})
	if err := netproto.WriteFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Proto == nil || resp.Proto.Version != netproto.ProtoVersion {
		t.Fatalf("downgrade handshake got %+v, want negotiated version %d", resp, netproto.ProtoVersion)
	}
	// The downgraded session works: a ping round-trips.
	ping, _ := netproto.NewEnvelope(2, netproto.OpPing, nil)
	if err := netproto.WriteFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK {
		t.Errorf("ping after downgrade: %v %+v", err, resp)
	}
}

// The new client against a daemon that predates the hello op: Dial
// detects the v1-style untyped error and fails with CodeVersion.
func TestVersionSkewNewClientOldDaemon(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// A v1 daemon reads the hello as an unknown op and answers with
		// an untyped (code-less) error, like the old dispatch did.
		var req netproto.LegacyRequest
		if err := netproto.ReadFrame(conn, &req); err != nil {
			return
		}
		netproto.WriteFrame(conn, netproto.Response{ID: req.ID, Err: `unknown op "hello"`})
	}()
	_, err = dvlib.Dial(ln.Addr().String(), "new-client")
	if err == nil {
		t.Fatal("dial to a pre-versioned daemon succeeded")
	}
	if code := dvlib.ErrCodeOf(err); code != netproto.CodeVersion {
		t.Errorf("dial failed with code %q (%v), want %q", code, err, netproto.CodeVersion)
	}
}

// A complete frame with a garbage payload must not cost the connection:
// the daemon answers CodeFrame and keeps serving.
func TestGarbageFrameRecovered(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "messy"})
	if err := netproto.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	// Length-prefixed garbage: 4 bytes of non-JSON.
	if _, err := conn.Write([]byte{0, 0, 0, 4, '{', '{', '{', '{'}); err != nil {
		t.Fatal(err)
	}
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != netproto.CodeFrame {
		t.Errorf("garbage frame answered with %+v, want CodeFrame", resp)
	}
	// The session survives: a ping still round-trips.
	ping, _ := netproto.NewEnvelope(2, netproto.OpPing, nil)
	if err := netproto.WriteFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 2 {
		t.Errorf("ping after garbage frame: %v %+v", err, resp)
	}
}

// A second hello on an established session is rejected: it would rewrite
// the session's client identity under running goroutines.
func TestDuplicateHelloRejected(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "a"})
	netproto.WriteFrame(conn, hello)
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	again, _ := netproto.NewEnvelope(2, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "b"})
	netproto.WriteFrame(conn, again)
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != netproto.CodeBadRequest {
		t.Errorf("duplicate hello answered with %+v, want CodeBadRequest", resp)
	}
	// The original session keeps working.
	ping, _ := netproto.NewEnvelope(3, netproto.OpPing, nil)
	netproto.WriteFrame(conn, ping)
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK {
		t.Errorf("ping after rejected re-hello: %v %+v", err, resp)
	}
}

// A malformed body on a known op is answered with CodeBadRequest naming
// the op and id, and the connection survives.
func TestBadBodyAnsweredStructured(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "messy"})
	netproto.WriteFrame(conn, hello)
	var resp netproto.Response
	if err := netproto.ReadFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	bad, _ := netproto.NewEnvelope(5, netproto.OpOpen, 42) // number, not an object
	if err := netproto.WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	if err := netproto.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Code != netproto.CodeBadRequest {
		t.Errorf("bad body answered with %+v, want CodeBadRequest on id 5", resp)
	}
}
