package server

import (
	"io"
	"net"
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/model"
	"simfs/internal/netproto"
)

// rawConn dials the daemon without any client library: the tests below
// speak the wire protocol (or the wrong one) by hand.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// A v1 client (no hello, untyped request bag) against the new daemon:
// the first frame is answered with a structured CodeVersion error and
// the connection closes.
func TestVersionSkewOldClientNewDaemon(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	if err := netproto.JSON.EncodeFrame(conn, netproto.LegacyRequest{ID: 7, Op: netproto.OpPing, Client: "old"}); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 {
		t.Errorf("rejection answered to id %d, want 7", resp.ID)
	}
	if resp.Code != netproto.CodeVersion || resp.Err == "" {
		t.Errorf("old client got %+v, want a CodeVersion error", resp)
	}
	// The daemon closes the connection after the rejection.
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != io.EOF {
		t.Errorf("connection survived the version rejection: %v", err)
	}
}

// A hello below the daemon's minimum version is rejected with
// CodeVersion too.
func TestVersionSkewTooOldHello(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	env, err := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.MinProtoVersion - 1, Client: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.EncodeFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != netproto.CodeVersion {
		t.Errorf("too-old hello got %+v, want CodeVersion", resp)
	}
}

// A newer client downgrades gracefully: the daemon answers with its own
// (lower) version and keeps serving.
func TestVersionSkewNewerClientDowngrades(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	env, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion + 5, Client: "future"})
	if err := netproto.JSON.EncodeFrame(conn, env); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Proto == nil || resp.Proto.Version != netproto.ProtoVersion {
		t.Fatalf("downgrade handshake got %+v, want negotiated version %d", resp, netproto.ProtoVersion)
	}
	// The downgraded session works: a ping round-trips.
	ping, _ := netproto.NewEnvelope(2, netproto.OpPing, nil)
	if err := netproto.JSON.EncodeFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Errorf("ping after downgrade: %v %+v", err, resp)
	}
}

// The new client against a daemon that predates the hello op: Dial
// detects the v1-style untyped error and fails with CodeVersion.
func TestVersionSkewNewClientOldDaemon(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// A v1 daemon reads the hello as an unknown op and answers with
		// an untyped (code-less) error, like the old dispatch did.
		var req netproto.LegacyRequest
		if err := netproto.JSON.DecodeFrame(conn, &req); err != nil {
			return
		}
		netproto.JSON.EncodeFrame(conn, netproto.Response{ID: req.ID, Err: `unknown op "hello"`})
	}()
	_, err = dvlib.Dial(ln.Addr().String(), "new-client")
	if err == nil {
		t.Fatal("dial to a pre-versioned daemon succeeded")
	}
	if code := dvlib.ErrCodeOf(err); code != netproto.CodeVersion {
		t.Errorf("dial failed with code %q (%v), want %q", code, err, netproto.CodeVersion)
	}
}

// A complete frame with a garbage payload must not cost the connection:
// the daemon answers CodeFrame and keeps serving.
func TestGarbageFrameRecovered(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "messy"})
	if err := netproto.JSON.EncodeFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	// Length-prefixed garbage: 4 bytes of non-JSON.
	if _, err := conn.Write([]byte{0, 0, 0, 4, '{', '{', '{', '{'}); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != netproto.CodeFrame {
		t.Errorf("garbage frame answered with %+v, want CodeFrame", resp)
	}
	// The session survives: a ping still round-trips.
	ping, _ := netproto.NewEnvelope(2, netproto.OpPing, nil)
	if err := netproto.JSON.EncodeFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 2 {
		t.Errorf("ping after garbage frame: %v %+v", err, resp)
	}
}

// A second hello on an established session is rejected: it would rewrite
// the session's client identity under running goroutines.
func TestDuplicateHelloRejected(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "a"})
	netproto.JSON.EncodeFrame(conn, hello)
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	again, _ := netproto.NewEnvelope(2, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "b"})
	netproto.JSON.EncodeFrame(conn, again)
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != netproto.CodeBadRequest {
		t.Errorf("duplicate hello answered with %+v, want CodeBadRequest", resp)
	}
	// The original session keeps working.
	ping, _ := netproto.NewEnvelope(3, netproto.OpPing, nil)
	netproto.JSON.EncodeFrame(conn, ping)
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Errorf("ping after rejected re-hello: %v %+v", err, resp)
	}
}

// A JSON-only v2 client against a binary-capable v3 daemon: the daemon
// advertises the binary capability but — because the client never asked
// for it — keeps the session on JSON frames for its whole life.
func TestVersionSkewJSONClientBinaryDaemon(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.MinProtoVersion, Client: "v2-json",
			Caps: []string{netproto.CapAdmin, netproto.CapWatch}})
	if err := netproto.JSON.EncodeFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	if resp.Proto == nil || !hasCapability(resp.Proto.Caps, netproto.CapBinary) {
		t.Fatalf("daemon did not advertise %q: %+v", netproto.CapBinary, resp.Proto)
	}
	// Hot ops still round-trip as JSON frames.
	open, _ := netproto.NewEnvelope(2, netproto.OpOpen,
		netproto.FileBody{Context: "clim", File: "clim_out_00000003.nc"})
	if err := netproto.JSON.EncodeFrame(conn, open); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 2 {
		t.Fatalf("JSON open on a binary-capable daemon: %v %+v", err, resp)
	}
	ping, _ := netproto.NewEnvelope(3, netproto.OpPing, nil)
	netproto.JSON.EncodeFrame(conn, ping)
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 3 {
		t.Errorf("JSON ping: %v %+v", err, resp)
	}
}

// A binary-requesting client against a daemon not offering the
// capability: the handshake succeeds and the session falls back to JSON
// cleanly.
func TestVersionSkewBinaryClientNoBinDaemon(t *testing.T) {
	_, addr := testStackWith(t, func(st *Stack) { st.Server.DisableBinary = true })
	c, err := dvlib.Dial(addr, "wants-binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.UsesBinary() {
		t.Fatal("client negotiated binary against a DisableBinary daemon")
	}
	if c.HasCapability(netproto.CapBinary) {
		t.Error("DisableBinary daemon advertised the binary capability")
	}
	// The JSON fallback serves the full data plane.
	names, err := c.Contexts()
	if err != nil || len(names) != 1 || names[0] != "clim" {
		t.Fatalf("Contexts over JSON fallback = %v, %v", names, err)
	}
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Open(ctx.Filename(2)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Close(ctx.Filename(2)); err != nil {
		t.Fatal(err)
	}
}

// A raw binary session: hello negotiates the codec switch, hot ops
// round-trip as binary frames, and a garbage binary frame is answered
// with CodeFrame without costing the connection.
func TestBinarySessionRawFrames(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "raw-bin",
			Caps: []string{netproto.CapBinary}})
	if err := netproto.JSON.EncodeFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	// From here the session speaks binary both ways.
	ping, _ := netproto.NewEnvelope(2, netproto.OpPing, nil)
	if err := netproto.Binary.EncodeFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.Binary.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 2 {
		t.Fatalf("binary ping: %v %+v", err, resp)
	}
	open, _ := netproto.NewEnvelope(3, netproto.OpOpen,
		netproto.FileBody{Context: "clim", File: "clim_out_00000003.nc"})
	if err := netproto.Binary.EncodeFrame(conn, open); err != nil {
		t.Fatal(err)
	}
	if err := netproto.Binary.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 3 {
		t.Fatalf("binary open: %v %+v", err, resp)
	}
	// An unknown binary opcode is a recoverable frame error.
	if _, err := conn.Write([]byte{0, 0, 0, 2, 0x7F, 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := netproto.Binary.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != netproto.CodeFrame {
		t.Errorf("garbage binary frame answered with %+v, want CodeFrame", resp)
	}
	ping2, _ := netproto.NewEnvelope(4, netproto.OpPing, nil)
	netproto.Binary.EncodeFrame(conn, ping2)
	if err := netproto.Binary.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 4 {
		t.Errorf("binary ping after garbage frame: %v %+v", err, resp)
	}
}

// Graceful shutdown: a wait pending when the daemon closes is answered
// with a terminal structured draining frame — not a silently dropped
// connection — so the client knows the request can be retried elsewhere.
func TestCloseDrainsPendingWaiters(t *testing.T) {
	var st *Stack
	_, addr := testStackWith(t, func(s *Stack) {
		st = s
		// Slow each produced step down so the wait below is still pending
		// when Close fires.
		inner := s.Launcher.Write
		s.Launcher.Write = func(ctx *model.Context, step int) error {
			time.Sleep(50 * time.Millisecond)
			return inner(ctx, step)
		}
	})
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "drainee"})
	if err := netproto.JSON.EncodeFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	open, _ := netproto.NewEnvelope(2, netproto.OpOpen,
		netproto.FileBody{Context: "clim", File: "clim_out_00000006.nc"})
	if err := netproto.JSON.EncodeFrame(conn, open); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.Available {
		t.Fatalf("open: %v %+v", err, resp)
	}
	wait, _ := netproto.NewEnvelope(3, netproto.OpWait,
		netproto.FileBody{Context: "clim", File: "clim_out_00000006.nc"})
	if err := netproto.JSON.EncodeFrame(conn, wait); err != nil {
		t.Fatal(err)
	}
	// A ping round-trip pins the ordering: once its reply arrives the
	// daemon has dispatched the wait, so Close finds it pending.
	ping, _ := netproto.NewEnvelope(4, netproto.OpPing, nil)
	if err := netproto.JSON.EncodeFrame(conn, ping); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK || resp.ID != 4 {
		t.Fatalf("ping: %v %+v", err, resp)
	}

	st.Server.Close()
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatalf("pending wait got no frame on shutdown: %v", err)
	}
	if resp.ID != 3 || resp.Code != netproto.CodeDraining || !resp.Done {
		t.Errorf("pending wait answered with %+v, want a terminal CodeDraining frame on id 3", resp)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != io.EOF {
		t.Errorf("connection survived shutdown: %v %+v", err, resp)
	}
}

// A malformed body on a known op is answered with CodeBadRequest naming
// the op and id, and the connection survives.
func TestBadBodyAnsweredStructured(t *testing.T) {
	_, addr := testStack(t)
	conn := rawConn(t, addr)
	hello, _ := netproto.NewEnvelope(1, netproto.OpHello,
		netproto.HelloBody{Version: netproto.ProtoVersion, Client: "messy"})
	netproto.JSON.EncodeFrame(conn, hello)
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil || !resp.OK {
		t.Fatalf("handshake: %v %+v", err, resp)
	}
	bad, _ := netproto.NewEnvelope(5, netproto.OpOpen, 42) // number, not an object
	if err := netproto.JSON.EncodeFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	if err := netproto.JSON.DecodeFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Code != netproto.CodeBadRequest {
		t.Errorf("bad body answered with %+v, want CodeBadRequest on id 5", resp)
	}
}
