package server

import (
	"testing"
	"time"

	"simfs/internal/model"
)

func syncTestContext(name string) *model.Context {
	return &model.Context{
		Name:               name,
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 16},
		OutputBytes:        128,
		RestartBytes:       64,
		Tau:                time.Millisecond,
		Alpha:              time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
}

// SyncContexts reconciles the daemon against a desired set: new contexts
// register, stale ones drain and deregister, existing ones are untouched.
func TestSyncContextsAddAndRemove(t *testing.T) {
	st, _ := testStack(t)

	// Add a second context.
	desired := []*model.Context{syncTestContext("clim"), syncTestContext("aux")}
	added, removed, err := st.SyncContexts(desired, "DCL", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || added[0] != "aux" || len(removed) != 0 {
		t.Fatalf("sync added=%v removed=%v, want added=[aux]", added, removed)
	}
	if _, ok := st.V.Context("aux"); !ok {
		t.Fatal("aux not registered after sync")
	}
	if _, ok := st.Area("aux"); !ok {
		t.Fatal("aux has no storage area after sync")
	}

	// A no-op sync changes nothing.
	added, removed, err = st.SyncContexts(desired, "DCL", false)
	if err != nil || len(added) != 0 || len(removed) != 0 {
		t.Fatalf("idempotent sync: added=%v removed=%v err=%v", added, removed, err)
	}

	// Dropping clim from the desired set drains and deregisters it.
	added, removed, err = st.SyncContexts([]*model.Context{syncTestContext("aux")}, "DCL", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "clim" || len(added) != 0 {
		t.Fatalf("sync added=%v removed=%v, want removed=[clim]", added, removed)
	}
	if _, ok := st.V.Context("clim"); ok {
		t.Fatal("clim still registered after removal sync")
	}
}

// A stale context with live references survives the sync (draining) and
// is removed by a later one after the workload empties.
func TestSyncContextsBusyStaysDraining(t *testing.T) {
	st, _ := testStack(t)
	ctx, _ := st.V.Context("clim")
	file := ctx.Filename(1)
	// Make the file resident so the open is a pure cache hit (a miss
	// would hold a live re-simulation, muddying the refcount check).
	area, _ := st.Area("clim")
	if err := area.Create(file, ctx.OutputBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := st.V.RescanStorageArea("clim"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.V.Open("holder", "clim", file); err != nil {
		t.Fatal(err)
	}

	_, removed, err := st.SyncContexts(nil, "DCL", false)
	if err == nil {
		t.Fatal("sync removed a context with live references")
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none", removed)
	}
	if _, ok := st.V.Context("clim"); !ok {
		t.Fatal("busy context vanished")
	}
	if draining, _ := st.V.Draining("clim"); !draining {
		t.Error("busy stale context should be left draining")
	}

	// Release the reference; the next sync completes the removal.
	if err := st.V.Release("holder", "clim", file); err != nil {
		t.Fatal(err)
	}
	_, removed, err = st.SyncContexts(nil, "DCL", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "clim" {
		t.Fatalf("retry sync removed %v, want [clim]", removed)
	}
}
