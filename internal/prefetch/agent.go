package prefetch

import (
	"time"

	"simfs/internal/metrics"
	"simfs/internal/model"
)

// Range is an inclusive range of output step indices a re-simulation
// should produce.
type Range struct {
	First, Last int
}

// Len returns the number of output steps in the range.
func (r Range) Len() int { return r.Last - r.First + 1 }

// Decision is the agent's advice after observing one access. The DV core
// translates it into launcher calls: it deduplicates against files already
// resident or promised, enforces smax, and kills the agent's outstanding
// prefetches when Reset is set.
type Decision struct {
	// Launches are re-simulations to start, most urgent first.
	Launches []Range
	// Parallelism is the level to run the launches at (strategy 1).
	Parallelism int
	// Reset signals that the access pattern changed (direction, stride or
	// a jump): outstanding prefetched simulations of this agent that
	// nobody else waits for should be killed (Sec. IV-C).
	Reset bool
}

// Agent monitors one analysis application's access pattern on one context
// and decides when to prefetch (paper Sec. IV-B: "We associate each
// analysis application that is interfaced to SimFS with a prefetch
// agent"). It is a pure state machine: all inputs arrive via OnAccess and
// the estimated simulation parameters via its Estimator; it performs no
// I/O and holds no locks.
type Agent struct {
	grid model.Grid
	est  Estimator

	tauCli *metrics.EMA

	primed    bool
	lastStep  int
	lastTime  time.Duration
	dir       int // +1 forward, -1 backward, 0 unknown
	k         int // stride
	confirmed int // consecutive consistent strides observed

	// s is the current parallel-prefetch level (doubling ramp-up).
	s      int
	rampUp bool
	smax   int
}

// Estimator supplies the agent's view of the simulation performance model:
// the (EMA-smoothed) restart latency estimate ᾱsim and the inter-production
// time τsim(p). The DV core implements it from observed simulations.
type Estimator interface {
	AlphaEstimate() time.Duration
	TauEstimate(parallelism int) time.Duration
	// DefaultParallelism and MaxParallelism bound strategy 1.
	DefaultParallelism() int
	MaxParallelism() int
}

// NewAgent returns an agent for the given grid with the given estimator.
// smax caps the parallel-prefetch level; rampUp enables the s-doubling
// ramp instead of launching sopt at once.
func NewAgent(grid model.Grid, est Estimator, smax int, rampUp bool, tauCliSmoothing float64) *Agent {
	if smax < 1 {
		smax = 1
	}
	return &Agent{
		grid:   grid,
		est:    est,
		tauCli: metrics.NewEMA(tauCliSmoothing),
		s:      1,
		rampUp: rampUp,
		smax:   smax,
	}
}

// Direction returns the detected analysis direction (+1, -1, or 0 if no
// pattern has been confirmed).
func (a *Agent) Direction() int {
	if a.confirmed < 2 {
		return 0
	}
	return a.dir
}

// Stride returns the detected stride k (0 if no pattern confirmed).
func (a *Agent) Stride() int {
	if a.confirmed < 2 {
		return 0
	}
	return a.k
}

// TauCli returns the measured inter-access time of the analysis.
func (a *Agent) TauCli() time.Duration {
	return time.Duration(a.tauCli.Value(0))
}

// Reset clears all pattern state (used on cache-pollution signals, which
// reset all active prefetch agents, Sec. IV-C).
func (a *Agent) Reset() {
	a.primed = false
	a.dir, a.k, a.confirmed = 0, 0, 0
	a.s = 1
	a.tauCli.Reset()
}

// Cover reports the furthest step along direction dir (stride k) that is
// already resident or promised by running simulations, contiguously from
// the current step. The DV core implements it from its file state.
type Cover func(dir, k int) int

// OnAccess feeds one analysis access into the agent. step is the accessed
// output step and now the current time. procTime is the DV-measured
// processing time of the analysis — the time since the client's previous
// file became available, *excluding* time spent blocked on missing files;
// this is the τcli of the performance model (if the raw inter-access gap
// were used, a simulation-paced analysis would be indistinguishable from a
// slow one and bandwidth matching could never engage). cover lets the
// agent query the coverage frontier along its (just updated) trajectory.
// The returned Decision may request launches or a reset.
func (a *Agent) OnAccess(step int, now, procTime time.Duration, cover Cover) Decision {
	var d Decision
	if !a.primed {
		a.primed = true
		a.lastStep, a.lastTime = step, now
		return d
	}
	delta := step - a.lastStep
	dt := procTime
	if dt <= 0 || dt > now-a.lastTime {
		dt = now - a.lastTime
	}
	a.lastStep, a.lastTime = step, now
	if delta == 0 {
		return d // repeated access to the same step: no pattern info
	}

	dir, k := 1, delta
	if delta < 0 {
		dir, k = -1, -delta
	}
	if dir != a.dir || k != a.k {
		// "A prefetch agent resets itself whenever the analysis tool
		// changes its analysis direction and/or stride" (Sec. IV-B).
		wasActive := a.confirmed >= 2
		a.dir, a.k = dir, k
		a.confirmed = 1
		a.s = 1
		a.tauCli.Reset()
		a.tauCli.Observe(float64(dt))
		d.Reset = wasActive
		return d
	}
	a.confirmed++
	a.tauCli.Observe(float64(dt))
	if a.confirmed < 2 {
		return d
	}

	// Pattern confirmed: decide whether the coverage frontier is close
	// enough that new re-simulations must start now to mask their restart
	// latency.
	alpha := a.est.AlphaEstimate()
	p := a.planParallelism()
	tauSim := a.est.TauEstimate(p)
	tauCli := time.Duration(a.tauCli.Value(float64(tauSim)))

	lead := PrefetchLead(a.k, alpha, tauSim, tauCli)
	// The paper's prefetching-step formula assumes the analysis is paced
	// by the simulation (max(k·τsim, τcli) per access). Once the runway is
	// cached, the analysis moves at τcli per access, so masking the next
	// restart latency needs a proportionally longer lead — otherwise every
	// batch boundary exposes a fresh αsim.
	if tauCli > 0 && tauCli < time.Duration(a.k)*tauSim {
		if fast := ceilDiv(alpha, tauCli) * a.k; fast > lead {
			lead = fast
		}
	}
	coveredUntil := cover(a.dir, a.k)
	remaining := 0
	if a.dir > 0 {
		remaining = coveredUntil - step
	} else {
		remaining = step - coveredUntil
	}
	if remaining > lead {
		return d // plenty of runway, nothing to do
	}

	// Compute the batch size s and per-simulation length n.
	var n int
	sopt := 1
	if a.dir > 0 {
		n = ForwardResimLength(a.grid, a.k, alpha, tauSim, tauCli)
		sopt = ForwardSOpt(a.k, tauSim, tauCli)
	} else {
		if bn, slow := BackwardResimLength(a.grid, a.k, alpha, tauSim, tauCli); slow {
			n = bn
			sopt = 1
		} else {
			n = a.grid.ExtendToRestart(a.grid.OutputsPerRestart())
			sopt = BackwardS(n, a.k, alpha, tauSim, tauCli)
		}
	}
	s := a.nextS(sopt)

	// Build s contiguous ranges of n steps each, beyond the frontier.
	frontier := coveredUntil
	if a.dir > 0 {
		if frontier < step {
			frontier = step
		}
		for i := 0; i < s; i++ {
			first := frontier + 1
			last := frontier + n
			if first > a.grid.NumOutputSteps() {
				break
			}
			if last > a.grid.NumOutputSteps() {
				last = a.grid.NumOutputSteps()
			}
			d.Launches = append(d.Launches, Range{First: first, Last: last})
			frontier = last
		}
	} else {
		if frontier > step {
			frontier = step
		}
		for i := 0; i < s; i++ {
			last := frontier - 1
			first := frontier - n
			if last < 1 {
				break
			}
			if first < 1 {
				first = 1
			}
			d.Launches = append(d.Launches, Range{First: first, Last: last})
			frontier = first
		}
	}
	d.Parallelism = p
	return d
}

// planParallelism implements strategy 1 (Sec. IV-B1b): raise the
// parallelism of the next re-simulation while the analysis outpaces the
// simulation and the driver allows more nodes, then leave the residual gap
// to strategy 2 (parallel simulations).
func (a *Agent) planParallelism() int {
	p := a.est.DefaultParallelism()
	maxP := a.est.MaxParallelism()
	tauCli := time.Duration(a.tauCli.Value(0))
	if tauCli <= 0 {
		return p
	}
	for p < maxP {
		if time.Duration(a.k)*a.est.TauEstimate(p) <= tauCli {
			break // simulation fast enough at this level
		}
		next := p * 2
		if next > maxP {
			next = maxP
		}
		if a.est.TauEstimate(next) >= a.est.TauEstimate(p) {
			break // no performance benefit in increasing p
		}
		p = next
	}
	return p
}

// nextS returns the parallel-simulation count for this prefetching step,
// applying the doubling ramp-up when configured: "start with s = 1 and
// double it at each prefetching step until ... s < min(sopt, smax)".
func (a *Agent) nextS(sopt int) int {
	target := sopt
	if target > a.smax {
		target = a.smax
	}
	if target < 1 {
		target = 1
	}
	if !a.rampUp {
		a.s = target
		return target
	}
	s := a.s
	if s > target {
		s = target
	}
	if a.s < target {
		a.s *= 2
		if a.s > target {
			a.s = target
		}
	}
	return s
}
