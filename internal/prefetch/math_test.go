package prefetch

import (
	"testing"
	"testing/quick"
	"time"

	"simfs/internal/model"
)

// The paper's worked example (Figs. 7-9): Δr=4 timesteps, Δd=1, αsim=2,
// τsim=1, τcli=1/2, k=1. Units are arbitrary; we use seconds.
var (
	exGrid = model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 1 << 20}
	exA    = 2 * time.Second
	exTau  = 1 * time.Second
	exCli  = 500 * time.Millisecond
)

func TestForwardResimLengthPaperExample(t *testing.T) {
	// n ≥ ⌈α/max(k·τsim,τcli) + 2⌉·k = ⌈2/1 + 2⌉ = 4, already a restart
	// multiple → n = 4, matching SIM #2..#5 producing 4 steps each in
	// Fig. 8.
	n := ForwardResimLength(exGrid, 1, exA, exTau, exCli)
	if n != 4 {
		t.Errorf("n = %d, want 4 (paper Fig. 8)", n)
	}
}

func TestForwardSOptPaperExample(t *testing.T) {
	// sopt = ⌈k·τsim/τcli⌉ = ⌈1/0.5⌉ = 2, matching Fig. 9 ("the prefetch
	// agent now starts sopt = 2 new re-simulations at each prefetching
	// step").
	if s := ForwardSOpt(1, exTau, exCli); s != 2 {
		t.Errorf("sopt = %d, want 2 (paper Fig. 9)", s)
	}
}

func TestBackwardSPaperExample(t *testing.T) {
	// Fig. 10: α=2, τsim=1, τcli=1/2, k=1, n=4 → s = k·α/(n·τcli) +
	// k·τsim/τcli = 2/2 + 2 = 3 parallel re-simulations.
	if s := BackwardS(4, 1, exA, exTau, exCli); s != 3 {
		t.Errorf("s = %d, want 3 (paper Fig. 10)", s)
	}
}

func TestBackwardResimLengthSlowAnalysis(t *testing.T) {
	// Analysis slower than simulation: τcli=3, k=1, τsim=1, α=2 →
	// n = k·α/(τcli−k·τsim) = 2/2 = 1, extended to the restart interval 4.
	n, ok := BackwardResimLength(exGrid, 1, exA, exTau, 3*time.Second)
	if !ok || n != 4 {
		t.Errorf("n = %d ok=%v, want 4 true", n, ok)
	}
	// Analysis faster than simulation: the formula does not apply.
	if _, ok := BackwardResimLength(exGrid, 1, exA, exTau, exCli); ok {
		t.Error("fast analysis should report ok=false")
	}
}

func TestPrefetchLead(t *testing.T) {
	// lead = ⌈α/max(k·τsim,τcli)⌉·k = ⌈2/1⌉ = 2 for the paper example.
	if l := PrefetchLead(1, exA, exTau, exCli); l != 2 {
		t.Errorf("lead = %d, want 2", l)
	}
	// Stride scales the lead.
	if l := PrefetchLead(3, exA, exTau, exCli); l != 3 {
		// max(3·1s, 0.5s)=3s; ⌈2/3⌉=1; ·k=3
		t.Errorf("lead k=3 = %d, want 3", l)
	}
	// Lead is at least one stride.
	if l := PrefetchLead(2, 0, exTau, exCli); l != 2 {
		t.Errorf("zero-alpha lead = %d, want k", l)
	}
}

func TestReferenceTimes(t *testing.T) {
	if got := TSingle(13*time.Second, 3*time.Second, 72); got != 13*time.Second+216*time.Second {
		t.Errorf("TSingle = %v", got)
	}
	if got := TLower(13*time.Second, 3*time.Second, 72, 8); got != 13*time.Second+27*time.Second {
		t.Errorf("TLower = %v", got)
	}
	if got := TLower(10*time.Second, time.Second, 10, 0); got != 20*time.Second {
		t.Errorf("TLower smax<1 = %v, want clamp to 1", got)
	}
	if got := ForwardWarmup(exA, exTau, 4); got != 8*time.Second {
		t.Errorf("ForwardWarmup = %v, want 2·2+4·1 = 8s", got)
	}
	if got := BackwardWarmup(exA, exTau, 2, 4); got != 10*time.Second {
		t.Errorf("BackwardWarmup = %v, want 10s", got)
	}
}

func TestForwardAnalysisTime(t *testing.T) {
	// T ≈ 2α + n·τsim + (m−n)·τsim/s
	got := ForwardAnalysisTime(exA, exTau, 12, 4, 2)
	want := 8*time.Second + 4*time.Second
	if got != want {
		t.Errorf("ForwardAnalysisTime = %v, want %v", got, want)
	}
	// m ≤ n: warm-up only.
	if got := ForwardAnalysisTime(exA, exTau, 3, 4, 2); got != 8*time.Second {
		t.Errorf("short analysis = %v, want warm-up only", got)
	}
}

// Property: n is always a positive multiple of the restart interval and
// grows monotonically with α.
func TestForwardResimLengthProperties(t *testing.T) {
	f := func(aMs, tauMs, cliMs uint16, kRaw, ddRaw, drRaw uint8) bool {
		g := model.Grid{
			DeltaD:    int(ddRaw%8) + 1,
			DeltaR:    int(drRaw%64) + 1,
			Timesteps: 1 << 20,
		}
		k := int(kRaw%4) + 1
		alpha := time.Duration(aMs) * time.Millisecond
		tau := time.Duration(tauMs+1) * time.Millisecond
		cli := time.Duration(cliMs+1) * time.Millisecond
		n := ForwardResimLength(g, k, alpha, tau, cli)
		if n < 1 || n%g.OutputsPerRestart() != 0 {
			return false
		}
		n2 := ForwardResimLength(g, k, alpha+time.Second, tau, cli)
		return n2 >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: sopt ≥ 1 and is nonincreasing in τcli.
func TestSOptProperties(t *testing.T) {
	f := func(tauMs, cliMs uint16, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		tau := time.Duration(tauMs+1) * time.Millisecond
		cli := time.Duration(cliMs+1) * time.Millisecond
		s1 := ForwardSOpt(k, tau, cli)
		s2 := ForwardSOpt(k, tau, cli*2)
		return s1 >= 1 && s2 <= s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: BackwardS covers the inequality s·(n/k)·τcli ≥ α + n·τsim.
func TestBackwardSSatisfiesInequality(t *testing.T) {
	f := func(aMs, tauMs, cliMs uint16, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		alpha := time.Duration(aMs) * time.Millisecond
		tau := time.Duration(tauMs+1) * time.Millisecond
		cli := time.Duration(cliMs+1) * time.Millisecond
		s := BackwardS(n, 1, alpha, tau, cli)
		lhs := float64(s) * float64(n) * float64(cli)
		rhs := float64(alpha) + float64(n)*float64(tau)
		return lhs >= rhs-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
