package prefetch

import (
	"testing"
	"time"

	"simfs/internal/model"
)

// fixedEst is a static Estimator for agent tests.
type fixedEst struct {
	alpha time.Duration
	tau   time.Duration
	defP  int
	maxP  int
}

func (f fixedEst) AlphaEstimate() time.Duration { return f.alpha }
func (f fixedEst) TauEstimate(p int) time.Duration {
	if p <= 0 {
		p = f.defP
	}
	if p > f.maxP {
		p = f.maxP
	}
	return f.tau * time.Duration(f.defP) / time.Duration(p)
}
func (f fixedEst) DefaultParallelism() int { return f.defP }
func (f fixedEst) MaxParallelism() int     { return f.maxP }

func exampleAgent(rampUp bool, smax int) *Agent {
	g := model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 1 << 20}
	est := fixedEst{alpha: 2 * time.Second, tau: time.Second, defP: 1, maxP: 1}
	return NewAgent(g, est, smax, rampUp, 0.5)
}

// fixedCover returns a Cover reporting a constant frontier.
func fixedCover(covered int) Cover {
	return func(dir, k int) int { return covered }
}

// walk feeds a sequence of (step, time) accesses with a fixed coverage
// frontier, returning the last decision.
func walk(a *Agent, steps []int, dt time.Duration, covered int) Decision {
	var d Decision
	now := time.Duration(0)
	for _, s := range steps {
		d = a.OnAccess(s, now, 0, fixedCover(covered))
		now += dt
	}
	return d
}

func TestPatternDetection(t *testing.T) {
	a := exampleAgent(false, 8)
	if a.Direction() != 0 {
		t.Fatal("fresh agent should have no direction")
	}
	a.OnAccess(10, 0, 0, fixedCover(1000))
	if a.Direction() != 0 {
		t.Fatal("one access cannot confirm a pattern")
	}
	a.OnAccess(11, time.Second, 0, fixedCover(1000))
	a.OnAccess(12, 2*time.Second, 0, fixedCover(1000))
	if a.Direction() != 1 || a.Stride() != 1 {
		t.Errorf("dir=%d k=%d, want forward stride 1", a.Direction(), a.Stride())
	}
}

func TestBackwardPatternDetection(t *testing.T) {
	a := exampleAgent(false, 8)
	walk(a, []int{100, 97, 94}, time.Second, 1)
	if a.Direction() != -1 || a.Stride() != 3 {
		t.Errorf("dir=%d k=%d, want backward stride 3", a.Direction(), a.Stride())
	}
}

func TestDirectionChangeResets(t *testing.T) {
	a := exampleAgent(false, 8)
	walk(a, []int{10, 11, 12}, time.Second, 1000)
	d := a.OnAccess(5, 4*time.Second, 0, fixedCover(1000))
	if !d.Reset {
		t.Error("direction change after a confirmed pattern must request a reset")
	}
	if a.Direction() != 0 {
		t.Error("pattern should be unconfirmed right after the change")
	}
	// Two further consistent strides re-confirm the new direction
	// (detection needs two consecutive equal strides).
	a.OnAccess(4, 5*time.Second, 0, fixedCover(1))
	a.OnAccess(3, 6*time.Second, 0, fixedCover(1))
	if a.Direction() != -1 {
		t.Error("new backward pattern not confirmed")
	}
}

func TestStrideChangeResets(t *testing.T) {
	a := exampleAgent(false, 8)
	walk(a, []int{10, 11, 12}, time.Second, 1000)
	d := a.OnAccess(14, 4*time.Second, 0, fixedCover(1000))
	if !d.Reset {
		t.Error("stride change must request a reset")
	}
}

func TestRepeatedAccessIsNeutral(t *testing.T) {
	a := exampleAgent(false, 8)
	walk(a, []int{10, 11, 12}, time.Second, 1000)
	d := a.OnAccess(12, 4*time.Second, 0, fixedCover(1000))
	if d.Reset || len(d.Launches) != 0 {
		t.Error("re-reading the same step must not disturb the pattern")
	}
	if a.Direction() != 1 {
		t.Error("pattern lost on repeated access")
	}
}

func TestNoLaunchWithPlentyOfRunway(t *testing.T) {
	a := exampleAgent(false, 8)
	// Coverage extends 100 steps ahead; lead is ~4, so no launches.
	d := walk(a, []int{1, 2, 3}, 500*time.Millisecond, 100)
	if len(d.Launches) != 0 {
		t.Errorf("unexpected launches: %v", d.Launches)
	}
}

func TestForwardLaunchWhenFrontierNear(t *testing.T) {
	a := exampleAgent(false, 8)
	// τcli = 0.5s, τsim=1s → sopt=2; n=4; coverage ends at step 4.
	a.OnAccess(1, 0, 0, fixedCover(4))
	a.OnAccess(2, 500*time.Millisecond, 0, fixedCover(4))
	d := a.OnAccess(3, time.Second, 0, fixedCover(4))
	if len(d.Launches) != 2 {
		t.Fatalf("launches = %+v, want 2 (sopt=2)", d.Launches)
	}
	if d.Launches[0] != (Range{First: 5, Last: 8}) {
		t.Errorf("first launch = %+v, want (5,8)", d.Launches[0])
	}
	if d.Launches[1] != (Range{First: 9, Last: 12}) {
		t.Errorf("second launch = %+v, want (9,12)", d.Launches[1])
	}
}

func TestBackwardLaunchDirection(t *testing.T) {
	a := exampleAgent(false, 8)
	// Backward analysis faster than sim: launches must cover steps below
	// the frontier, contiguous and non-overlapping.
	a.OnAccess(100, 0, 0, fixedCover(97))
	a.OnAccess(99, 500*time.Millisecond, 0, fixedCover(97))
	d := a.OnAccess(98, time.Second, 0, fixedCover(97))
	if len(d.Launches) == 0 {
		t.Fatal("backward launches expected")
	}
	// Fig. 10: s=3 for the example parameters.
	if len(d.Launches) != 3 {
		t.Errorf("launches = %d, want 3 (paper Fig. 10)", len(d.Launches))
	}
	hi := 97
	for _, r := range d.Launches {
		if r.Last != hi-1 {
			t.Errorf("launch %+v not contiguous below %d", r, hi)
		}
		if r.First > r.Last {
			t.Errorf("invalid range %+v", r)
		}
		hi = r.First
	}
}

func TestRampUpDoubling(t *testing.T) {
	a := exampleAgent(true, 8)
	est := fixedEst{alpha: 2 * time.Second, tau: time.Second, defP: 1, maxP: 1}
	_ = est
	// sopt=2 with the example parameters; ramp-up means the first
	// prefetching step launches s=1, the next s=2.
	a.OnAccess(1, 0, 0, fixedCover(4))
	a.OnAccess(2, 500*time.Millisecond, 0, fixedCover(4))
	d := a.OnAccess(3, time.Second, 0, fixedCover(4))
	if len(d.Launches) != 1 {
		t.Fatalf("ramp-up first batch = %d launches, want 1", len(d.Launches))
	}
	// Next trigger: coverage now ends at 8 (first launch); the lead is 2
	// steps, so the trigger fires when the analysis reaches step 6.
	a.OnAccess(4, 1500*time.Millisecond, 0, fixedCover(8))
	a.OnAccess(5, 2*time.Second, 0, fixedCover(8))
	d = a.OnAccess(6, 2500*time.Millisecond, 0, fixedCover(8))
	if len(d.Launches) != 2 {
		t.Fatalf("ramp-up second batch = %d launches, want 2", len(d.Launches))
	}
}

func TestSMaxCapsLaunches(t *testing.T) {
	a := exampleAgent(false, 1)
	a.OnAccess(1, 0, 0, fixedCover(4))
	a.OnAccess(2, 500*time.Millisecond, 0, fixedCover(4))
	d := a.OnAccess(3, time.Second, 0, fixedCover(4))
	if len(d.Launches) != 1 {
		t.Errorf("smax=1 should cap launches to 1, got %d", len(d.Launches))
	}
}

func TestLaunchesClampedToTimeline(t *testing.T) {
	g := model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 10} // only 10 output steps
	est := fixedEst{alpha: 2 * time.Second, tau: time.Second, defP: 1, maxP: 1}
	a := NewAgent(g, est, 8, false, 0.5)
	a.OnAccess(7, 0, 0, fixedCover(8))
	a.OnAccess(8, 500*time.Millisecond, 0, fixedCover(8))
	d := a.OnAccess(9, time.Second, 0, fixedCover(8))
	for _, r := range d.Launches {
		if r.Last > 10 || r.First < 1 {
			t.Errorf("launch %+v escapes the timeline", r)
		}
	}
}

func TestStrategy1RaisesParallelism(t *testing.T) {
	g := model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 1 << 20}
	// Simulation scales up to 8 nodes; analysis is 4× faster than the
	// default simulation speed → parallelism should rise toward 4.
	est := fixedEst{alpha: 2 * time.Second, tau: time.Second, defP: 1, maxP: 8}
	a := NewAgent(g, est, 8, false, 0.5)
	a.OnAccess(1, 0, 0, fixedCover(4))
	a.OnAccess(2, 250*time.Millisecond, 0, fixedCover(4))
	d := a.OnAccess(3, 500*time.Millisecond, 0, fixedCover(4))
	if len(d.Launches) == 0 {
		t.Fatal("launches expected")
	}
	if d.Parallelism < 4 {
		t.Errorf("parallelism = %d, want ≥4 (strategy 1)", d.Parallelism)
	}
}

func TestAgentResetClearsEverything(t *testing.T) {
	a := exampleAgent(false, 8)
	walk(a, []int{1, 2, 3}, 500*time.Millisecond, 1000)
	a.Reset()
	if a.Direction() != 0 || a.Stride() != 0 || a.TauCli() != 0 {
		t.Error("Reset did not clear agent state")
	}
}
