// Package prefetch implements SimFS's prefetching strategies (paper
// Sec. IV): pure closed-form functions for the re-simulation length n, the
// prefetching step, the optimal parallel-simulation count sopt, the
// backward-analysis s/n trade-off and the warm-up time bounds (Tpre,
// Tsingle, Tlower) — plus the per-analysis prefetch Agent that detects
// access patterns and decides when and what to prefetch.
package prefetch

import (
	"time"

	"simfs/internal/model"
)

// stepTime returns the analysis processing time per (k-strided) output
// step: max(k·τsim, τcli) — limited by either the simulation's production
// speed or the analysis's own speed (Sec. IV-B1a).
func stepTime(k int, tauSim, tauCli time.Duration) time.Duration {
	kt := time.Duration(k) * tauSim
	if kt > tauCli {
		return kt
	}
	return tauCli
}

// ceilDiv returns ⌈a/b⌉ for positive durations.
func ceilDiv(a, b time.Duration) int {
	if b <= 0 {
		return 0
	}
	return int((a + b - 1) / b)
}

// ForwardResimLength returns the re-simulation length n (in output steps)
// for a forward k-strided analysis: enough that analyzing ⌊n/k⌋ steps
// covers the restart latency of the next re-simulation, with two accesses
// reserved to confirm prefetching validity, rounded up to the nearest
// restart-interval multiple:
//
//	n = R(⌈αsim/max(k·τsim, τcli) + 2⌉·k + Δr/Δd)
func ForwardResimLength(g model.Grid, k int, alpha, tauSim, tauCli time.Duration) int {
	if k < 1 {
		k = 1
	}
	st := stepTime(k, tauSim, tauCli)
	n := (ceilDiv(alpha, st) + 2) * k
	return g.ExtendToRestart(n)
}

// PrefetchLead returns how many output steps before the end of the current
// re-simulation's coverage the next prefetch must be triggered:
// ⌈αsim/max(k·τsim, τcli)⌉·k. The prefetching step of the paper is
// di + n − PrefetchLead.
func PrefetchLead(k int, alpha, tauSim, tauCli time.Duration) int {
	if k < 1 {
		k = 1
	}
	lead := ceilDiv(alpha, stepTime(k, tauSim, tauCli)) * k
	if lead < k {
		lead = k
	}
	return lead
}

// ForwardSOpt returns the ideal number of parallel re-simulations to match
// a forward analysis's bandwidth: sopt = ⌈k·τsim/τcli⌉ (Sec. IV-B1b).
func ForwardSOpt(k int, tauSim, tauCli time.Duration) int {
	if tauCli <= 0 {
		tauCli = 1
	}
	s := ceilDiv(time.Duration(k)*tauSim, tauCli)
	if s < 1 {
		s = 1
	}
	return s
}

// BackwardResimLength returns the minimum re-simulation length n for a
// backward analysis that is slower than the simulation (τcli/k > τsim):
// n = k·αsim/(τcli − k·τsim), rounded up to the next restart step
// (Sec. IV-B2). ok is false when the analysis is not slower than the
// simulation, in which case the s/n trade-off of BackwardS applies.
func BackwardResimLength(g model.Grid, k int, alpha, tauSim, tauCli time.Duration) (n int, ok bool) {
	if k < 1 {
		k = 1
	}
	gap := tauCli - time.Duration(k)*tauSim
	if gap <= 0 {
		return 0, false
	}
	n = ceilDiv(time.Duration(k)*alpha, gap)
	return g.ExtendToRestart(n), true
}

// BackwardS returns the minimum number of parallel re-simulations of
// length n each that lets a backward analysis run at full speed:
// s = k·αsim/(n·τcli) + k·τsim/τcli (Sec. IV-B2).
func BackwardS(n, k int, alpha, tauSim, tauCli time.Duration) int {
	if k < 1 {
		k = 1
	}
	if n < 1 {
		n = 1
	}
	if tauCli <= 0 {
		tauCli = 1
	}
	num := float64(k)*float64(alpha)/(float64(n)*float64(tauCli)) +
		float64(k)*float64(tauSim)/float64(tauCli)
	s := int(num)
	if float64(s) < num {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// TSingle is the reference time of a single simulation serving all m
// analysis accesses: αsim + m·τsim (paper Sec. VI, Fig. 17).
func TSingle(alpha, tauSim time.Duration, m int) time.Duration {
	return alpha + time.Duration(m)*tauSim
}

// TLower is the lower bound of the prefetching strategy: the restart
// latency plus serving all m output steps with smax simulations in
// parallel: αsim + m·τsim/smax (paper Sec. VI, Fig. 17).
func TLower(alpha, tauSim time.Duration, m, smax int) time.Duration {
	if smax < 1 {
		smax = 1
	}
	return alpha + time.Duration(m)*tauSim/time.Duration(smax)
}

// ForwardWarmup approximates the forward prefetching warm-up time
// T_pre ≈ 2·αsim + n·τsim (Sec. IV-C1a).
func ForwardWarmup(alpha, tauSim time.Duration, n int) time.Duration {
	return 2*alpha + time.Duration(n)*tauSim
}

// BackwardWarmup approximates the backward prefetching warm-up time
// T_pre ≈ 2·αsim + Di·τsim + n·τsim, where Di is the distance of the first
// missed step from its restart step (Sec. IV-C1b).
func BackwardWarmup(alpha, tauSim time.Duration, di, n int) time.Duration {
	return 2*alpha + time.Duration(di)*tauSim + time.Duration(n)*tauSim
}

// ForwardAnalysisTime approximates the total forward analysis time with
// prefetching: T ≈ T_pre + (m−n)·τsim/s (Sec. IV-C1a), clamped so that
// m ≤ n degenerates to the warm-up alone.
func ForwardAnalysisTime(alpha, tauSim time.Duration, m, n, s int) time.Duration {
	t := ForwardWarmup(alpha, tauSim, n)
	if m > n && s > 0 {
		t += time.Duration(m-n) * tauSim / time.Duration(s)
	}
	return t
}
