package batch

import (
	"testing"
	"time"
)

func TestSamplers(t *testing.T) {
	if Constant(5*time.Second).Next() != 5*time.Second {
		t.Error("constant sampler wrong")
	}
	u := NewUniform(10, 20, 1)
	for i := 0; i < 100; i++ {
		d := u.Next()
		if d < 10 || d > 20 {
			t.Fatalf("uniform sample %v out of range", d)
		}
	}
	if NewUniform(7, 7, 1).Next() != 7 {
		t.Error("degenerate uniform should return the point")
	}
	// Swapped bounds are normalized.
	s := NewUniform(20, 10, 2)
	if s.Min != 10 || s.Max != 20 {
		t.Error("bounds not normalized")
	}
	e := NewExponential(time.Second, 3)
	var sum time.Duration
	for i := 0; i < 2000; i++ {
		d := e.Next()
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	mean := sum / 2000
	if mean < 800*time.Millisecond || mean > 1200*time.Millisecond {
		t.Errorf("exponential mean = %v, want ≈1s", mean)
	}
	if NewExponential(0, 1).Next() != 0 {
		t.Error("zero-mean exponential should return 0")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a, b := NewExponential(time.Second, 42), NewExponential(time.Second, 42)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same sequence")
		}
	}
}
