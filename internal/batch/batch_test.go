package batch

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSamplers(t *testing.T) {
	if Constant(5*time.Second).Next() != 5*time.Second {
		t.Error("constant sampler wrong")
	}
	u := NewUniform(10, 20, 1)
	for i := 0; i < 100; i++ {
		d := u.Next()
		if d < 10 || d > 20 {
			t.Fatalf("uniform sample %v out of range", d)
		}
	}
	if NewUniform(7, 7, 1).Next() != 7 {
		t.Error("degenerate uniform should return the point")
	}
	// Swapped bounds are normalized.
	s := NewUniform(20, 10, 2)
	if s.Min != 10 || s.Max != 20 {
		t.Error("bounds not normalized")
	}
	e := NewExponential(time.Second, 3)
	var sum time.Duration
	for i := 0; i < 2000; i++ {
		d := e.Next()
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += d
	}
	mean := sum / 2000
	if mean < 800*time.Millisecond || mean > 1200*time.Millisecond {
		t.Errorf("exponential mean = %v, want ≈1s", mean)
	}
	if NewExponential(0, 1).Next() != 0 {
		t.Error("zero-mean exponential should return 0")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a, b := NewExponential(time.Second, 42), NewExponential(time.Second, 42)
	for i := 0; i < 50; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestPoolImmediateGrant(t *testing.T) {
	p := NewPool(10)
	ran := false
	tk, err := p.Submit(4, func() { ran = true })
	if err != nil || !ran || !tk.Granted() {
		t.Fatalf("immediate grant failed: err=%v ran=%v", err, ran)
	}
	if p.Free() != 6 {
		t.Errorf("free = %d, want 6", p.Free())
	}
	p.Release(tk)
	if p.Free() != 10 {
		t.Errorf("free after release = %d", p.Free())
	}
	p.Release(tk) // double release is a no-op
	if p.Free() != 10 {
		t.Error("double release corrupted accounting")
	}
}

func TestPoolFIFOQueueing(t *testing.T) {
	p := NewPool(4)
	var order []int
	t1, _ := p.Submit(4, func() { order = append(order, 1) })
	p.Submit(2, func() { order = append(order, 2) })
	p.Submit(2, func() { order = append(order, 3) })
	if len(order) != 1 {
		t.Fatalf("only job 1 should have run, got %v", order)
	}
	if p.Queued() != 2 {
		t.Errorf("queued = %d", p.Queued())
	}
	p.Release(t1)
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want FIFO", order)
	}
}

func TestPoolNoBackfill(t *testing.T) {
	p := NewPool(4)
	t1, _ := p.Submit(3, func() {})
	small := false
	var big *Ticket
	big, _ = p.Submit(4, func() {}) // cannot fit: queues
	p.Submit(1, func() { small = true })
	if small {
		t.Error("small job backfilled past a blocked head (should be strict FIFO)")
	}
	p.Release(t1)
	if small {
		t.Error("small job must still wait behind the granted 4-node head")
	}
	if !big.Granted() {
		t.Fatal("4-node head should be granted after the release")
	}
	p.Release(big)
	if !small {
		t.Error("queue did not drain in order")
	}
}

func TestPoolCancel(t *testing.T) {
	p := NewPool(2)
	t1, _ := p.Submit(2, func() {})
	ran2 := false
	t2, _ := p.Submit(2, func() { ran2 = true })
	ran3 := false
	p.Submit(1, func() { ran3 = true })
	if !p.Cancel(t2) {
		t.Error("cancel of queued job should succeed")
	}
	if p.Cancel(t2) {
		t.Error("double cancel should fail")
	}
	if p.Cancel(t1) {
		t.Error("cancel of granted job should fail")
	}
	p.Release(t1)
	if ran2 {
		t.Error("canceled job ran")
	}
	if !ran3 {
		t.Error("job behind canceled head did not run")
	}
}

func TestPoolRejects(t *testing.T) {
	p := NewPool(4)
	if _, err := p.Submit(5, func() {}); err == nil {
		t.Error("oversized job should be rejected")
	}
	if _, err := p.Submit(0, func() {}); err == nil {
		t.Error("zero-node job should be rejected")
	}
}

func TestPoolUnlimited(t *testing.T) {
	p := NewPool(0)
	n := 0
	for i := 0; i < 100; i++ {
		if _, err := p.Submit(1000, func() { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n != 100 {
		t.Errorf("unlimited pool granted %d of 100", n)
	}
}

// Property: free nodes never go negative and total grants never exceed
// capacity at any instant, across random submit/release/cancel sequences.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewPool(8)
		var held []*Ticket
		inUse := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				nodes := int(op%8) + 1
				tk, err := p.Submit(nodes, func() {})
				if err != nil {
					return false
				}
				if tk.Granted() {
					inUse += nodes
					held = append(held, tk)
				} else if op%2 == 0 {
					p.Cancel(tk)
				} else {
					held = append(held, tk)
				}
			case 1:
				if len(held) > 0 {
					tk := held[0]
					held = held[1:]
					if tk.Granted() {
						p.Release(tk)
					}
				}
			case 2:
				if p.Free() < 0 {
					return false
				}
			}
			if p.Free() < 0 || p.Free() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
