// Package batch models the batch system SimFS submits re-simulation jobs
// to (paper Sec. III-B, IV-C1): queueing delays — the dominant,
// system-dependent component of the restart latency αsim on HPC machines —
// and a bounded node pool enforcing FIFO admission. Both are pure
// bookkeeping so they compose with either virtual (DES) or wall-clock time.
package batch

import (
	"fmt"
	"math/rand"
	"time"
)

// Sampler produces successive queueing delays.
type Sampler interface {
	Next() time.Duration
}

// Constant is a Sampler returning a fixed delay.
type Constant time.Duration

// Next implements Sampler.
func (c Constant) Next() time.Duration { return time.Duration(c) }

// Uniform samples delays uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
	Rng      *rand.Rand
}

// NewUniform returns a deterministic uniform sampler.
func NewUniform(min, max time.Duration, seed int64) *Uniform {
	if max < min {
		min, max = max, min
	}
	return &Uniform{Min: min, Max: max, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Sampler.
func (u *Uniform) Next() time.Duration {
	if u.Max == u.Min {
		return u.Min
	}
	return u.Min + time.Duration(u.Rng.Int63n(int64(u.Max-u.Min)))
}

// Exponential samples delays from an exponential distribution with the
// given mean — the classic model for batch queueing times with high
// variability (paper Sec. IV-C1c, "non-constant restart latencies").
type Exponential struct {
	Mean time.Duration
	Rng  *rand.Rand
}

// NewExponential returns a deterministic exponential sampler.
func NewExponential(mean time.Duration, seed int64) *Exponential {
	return &Exponential{Mean: mean, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Sampler.
func (e *Exponential) Next() time.Duration {
	if e.Mean <= 0 {
		return 0
	}
	return time.Duration(e.Rng.ExpFloat64() * float64(e.Mean))
}

// Ticket represents one job submission awaiting (or holding) nodes.
type Ticket struct {
	nodes    int
	fn       func()
	canceled bool
	granted  bool
}

// Granted reports whether the job was admitted.
func (t *Ticket) Granted() bool { return t.granted }

// Pool is a FIFO node pool: jobs requesting more nodes than currently free
// wait in submission order (no backfilling, conservatively modeling a
// crowded HPC partition). A zero-capacity pool admits everything
// immediately.
type Pool struct {
	capacity int
	free     int
	queue    []*Ticket
}

// NewPool returns a pool with the given node capacity (0 = unlimited).
func NewPool(capacity int) *Pool {
	return &Pool{capacity: capacity, free: capacity}
}

// Capacity returns the configured node count (0 = unlimited).
func (p *Pool) Capacity() int { return p.capacity }

// Free returns the currently idle node count (meaningless for unlimited
// pools).
func (p *Pool) Free() int { return p.free }

// Queued returns the number of jobs waiting for nodes.
func (p *Pool) Queued() int {
	n := 0
	for _, t := range p.queue {
		if !t.canceled {
			n++
		}
	}
	return n
}

// Submit requests nodes for a job; fn runs (synchronously) as soon as the
// nodes are granted — possibly immediately. Requests exceeding the total
// capacity are rejected.
func (p *Pool) Submit(nodes int, fn func()) (*Ticket, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("batch: job must request at least one node, got %d", nodes)
	}
	if p.capacity > 0 && nodes > p.capacity {
		return nil, fmt.Errorf("batch: job requests %d nodes, pool capacity is %d", nodes, p.capacity)
	}
	t := &Ticket{nodes: nodes, fn: fn}
	if p.capacity == 0 || (len(p.queue) == 0 && p.free >= nodes) {
		p.grant(t)
		return t, nil
	}
	p.queue = append(p.queue, t)
	return t, nil
}

// Release returns a granted job's nodes to the pool and admits queued jobs
// in FIFO order.
func (p *Pool) Release(t *Ticket) {
	if !t.granted {
		return
	}
	t.granted = false
	if p.capacity > 0 {
		p.free += t.nodes
	}
	p.drain()
}

// Cancel withdraws a queued job. It reports whether the job was removed
// before being granted.
func (p *Pool) Cancel(t *Ticket) bool {
	if t.granted || t.canceled {
		return false
	}
	t.canceled = true
	p.drain() // a canceled head may unblock followers
	return true
}

func (p *Pool) grant(t *Ticket) {
	t.granted = true
	if p.capacity > 0 {
		p.free -= t.nodes
	}
	t.fn()
}

func (p *Pool) drain() {
	for len(p.queue) > 0 {
		head := p.queue[0]
		if head.canceled {
			p.queue = p.queue[1:]
			continue
		}
		if p.capacity > 0 && p.free < head.nodes {
			return
		}
		p.queue = p.queue[1:]
		p.grant(head)
	}
}
