// Package batch models the batch system SimFS submits re-simulation jobs
// to (paper Sec. III-B, IV-C1): queueing delays — the dominant,
// system-dependent component of the restart latency αsim on HPC machines.
// The samplers are pure bookkeeping so they compose with either virtual
// (DES) or wall-clock time. The bounded node pool that used to live here
// was absorbed by the re-simulation scheduler (internal/sched), which
// enforces FIFO node admission above the launchers. A job killed while
// its sampled delay elapses (client cancellation or scheduler
// preemption) simply abandons the draw; if the scheduler later requeues
// its interval, the relaunch samples a fresh delay — a preempted job
// re-enters the batch queue like any new submission.
package batch

import (
	"math/rand"
	"time"
)

// Sampler produces successive queueing delays.
type Sampler interface {
	Next() time.Duration
}

// Constant is a Sampler returning a fixed delay.
type Constant time.Duration

// Next implements Sampler.
func (c Constant) Next() time.Duration { return time.Duration(c) }

// Uniform samples delays uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
	Rng      *rand.Rand
}

// NewUniform returns a deterministic uniform sampler.
func NewUniform(min, max time.Duration, seed int64) *Uniform {
	if max < min {
		min, max = max, min
	}
	return &Uniform{Min: min, Max: max, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Sampler.
func (u *Uniform) Next() time.Duration {
	if u.Max == u.Min {
		return u.Min
	}
	return u.Min + time.Duration(u.Rng.Int63n(int64(u.Max-u.Min)))
}

// Exponential samples delays from an exponential distribution with the
// given mean — the classic model for batch queueing times with high
// variability (paper Sec. IV-C1c, "non-constant restart latencies").
type Exponential struct {
	Mean time.Duration
	Rng  *rand.Rand
}

// NewExponential returns a deterministic exponential sampler.
func NewExponential(mean time.Duration, seed int64) *Exponential {
	return &Exponential{Mean: mean, Rng: rand.New(rand.NewSource(seed))}
}

// Next implements Sampler.
func (e *Exponential) Next() time.Duration {
	if e.Mean <= 0 {
		return 0
	}
	return time.Duration(e.Rng.ExpFloat64() * float64(e.Mean))
}
