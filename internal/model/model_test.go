package model

import (
	"testing"
	"testing/quick"
)

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Grid
		ok   bool
	}{
		{"valid", Grid{DeltaD: 4, DeltaR: 8, Timesteps: 16}, true},
		{"zero deltaD", Grid{DeltaD: 0, DeltaR: 8, Timesteps: 16}, false},
		{"zero deltaR", Grid{DeltaD: 4, DeltaR: 0, Timesteps: 16}, false},
		{"negative timesteps", Grid{DeltaD: 4, DeltaR: 8, Timesteps: -1}, false},
		{"deltaR smaller than deltaD", Grid{DeltaD: 8, DeltaR: 4, Timesteps: 16}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.g.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", c.g, err, c.ok)
			}
		})
	}
}

// TestPaperFigure3 checks the exact scenario of the paper's Figure 3:
// Δd=4, Δr=8, outputs d1..d4 at t=4,8,12,16 and restarts r1,r2 at t=8,16.
func TestPaperFigure3(t *testing.T) {
	g := Grid{DeltaD: 4, DeltaR: 8, Timesteps: 16}
	if got := g.NumOutputSteps(); got != 4 {
		t.Fatalf("NumOutputSteps = %d, want 4", got)
	}
	if got := g.NumRestartSteps(); got != 2 {
		t.Fatalf("NumRestartSteps = %d, want 2", got)
	}
	wantRestart := map[int]int{1: 0, 2: 0, 3: 8, 4: 8}
	for i, want := range wantRestart {
		if got := g.RestartBefore(i); got != want {
			t.Errorf("RestartBefore(d%d) = %d, want %d", i, got, want)
		}
	}
	wantCost := map[int]int{1: 1, 2: 2, 3: 1, 4: 2}
	for i, want := range wantCost {
		if got := g.MissCost(i); got != want {
			t.Errorf("MissCost(d%d) = %d, want %d", i, got, want)
		}
	}
}

func TestResimInterval(t *testing.T) {
	g := Grid{DeltaD: 4, DeltaR: 8, Timesteps: 20}
	cases := []struct {
		i          int
		start, end int
	}{
		{1, 0, 8},  // d1 at t=4: restart 0, run to next restart t=8
		{2, 0, 8},  // d2 at t=8: restart 0 (t=8 itself cannot reproduce d2)
		{3, 8, 16}, // d3 at t=12
		{4, 8, 16},
		{5, 16, 20}, // clamped to end of timeline
	}
	for _, c := range cases {
		iv, err := g.ResimInterval(c.i)
		if err != nil {
			t.Fatalf("ResimInterval(%d): %v", c.i, err)
		}
		if iv.Start != c.start || iv.End != c.end {
			t.Errorf("ResimInterval(%d) = (%d,%d], want (%d,%d]", c.i, iv.Start, iv.End, c.start, c.end)
		}
		if !iv.Contains(g, c.i) {
			t.Errorf("ResimInterval(%d) does not contain its own output step", c.i)
		}
	}
	if _, err := g.ResimInterval(0); err == nil {
		t.Error("ResimInterval(0) should fail")
	}
	if _, err := g.ResimInterval(6); err == nil {
		t.Error("ResimInterval(6) beyond timeline should fail")
	}
}

func TestOutputsIn(t *testing.T) {
	g := Grid{DeltaD: 4, DeltaR: 8, Timesteps: 32}
	iv := Interval{Start: 8, End: 16}
	first, last, ok := g.OutputsIn(iv)
	if !ok || first != 3 || last != 4 {
		t.Errorf("OutputsIn((8,16]) = %d,%d,%v, want 3,4,true", first, last, ok)
	}
	if _, _, ok := g.OutputsIn(Interval{Start: 8, End: 8}); ok {
		t.Error("empty interval should produce no outputs")
	}
}

func TestExtendToRestart(t *testing.T) {
	g := Grid{DeltaD: 4, DeltaR: 8, Timesteps: 64} // 2 outputs per restart
	cases := []struct{ n, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 6},
	}
	for _, c := range cases {
		if got := g.ExtendToRestart(c.n); got != c.want {
			t.Errorf("ExtendToRestart(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOutputsPerRestart(t *testing.T) {
	cases := []struct {
		d, r, want int
	}{
		{4, 8, 2}, {5, 60, 12}, {1, 20, 20}, {4, 10, 3} /* non-divisible rounds up */, {8, 4, 1},
	}
	for _, c := range cases {
		g := Grid{DeltaD: c.d, DeltaR: c.r, Timesteps: 1000}
		if got := g.OutputsPerRestart(); got != c.want {
			t.Errorf("OutputsPerRestart(Δd=%d,Δr=%d) = %d, want %d", c.d, c.r, got, c.want)
		}
	}
}

// Property: the re-simulation interval always starts at a restart step,
// covers the requested output step, and ends at a restart step or at the
// end of the timeline.
func TestResimIntervalProperties(t *testing.T) {
	f := func(dd, dr, n, i uint16) bool {
		g := Grid{
			DeltaD:    int(dd%64) + 1,
			DeltaR:    int(dr%256) + 1,
			Timesteps: int(n) + 1,
		}
		no := g.NumOutputSteps()
		if no == 0 {
			return true
		}
		idx := int(i)%no + 1
		iv, err := g.ResimInterval(idx)
		if err != nil {
			return false
		}
		if iv.Start%g.DeltaR != 0 {
			return false // must start at a restart step
		}
		if !iv.Contains(g, idx) {
			return false // must produce the requested output
		}
		if iv.End != g.Timesteps && iv.End%g.DeltaR != 0 {
			return false // must end at a restart step unless clamped
		}
		if iv.Start >= iv.End {
			return false
		}
		// The covered outputs must include idx.
		first, last, ok := g.OutputsIn(iv)
		return ok && first <= idx && idx <= last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: MissCost is within [1, OutputsPerRestart] and RestartBefore is
// the greatest restart multiple strictly below the output timestep.
func TestMissCostProperties(t *testing.T) {
	f := func(dd, dr, i uint16) bool {
		g := Grid{DeltaD: int(dd%64) + 1, DeltaR: int(dr%256) + 1, Timesteps: 1 << 20}
		idx := int(i)%1000 + 1
		r := g.RestartBefore(idx)
		if r%g.DeltaR != 0 || r < 0 {
			return false
		}
		if r >= g.OutputTimestep(idx) {
			return false
		}
		if r+g.DeltaR < g.OutputTimestep(idx) {
			return false // not the closest restart
		}
		cost := g.MissCost(idx)
		return cost >= 1 && cost <= g.OutputsPerRestart()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestContextValidateAndDefaults(t *testing.T) {
	c := &Context{
		Name:        "test",
		Grid:        Grid{DeltaD: 5, DeltaR: 60, Timesteps: 5760},
		OutputBytes: 6 << 30,
		Tau:         20e9,
	}
	c.ApplyDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	if c.RestartBytes != c.OutputBytes {
		t.Errorf("RestartBytes default = %d, want OutputBytes", c.RestartBytes)
	}
	if c.SMax != 8 || c.AlphaSmoothing != 0.5 {
		t.Errorf("unexpected defaults: SMax=%d smoothing=%v", c.SMax, c.AlphaSmoothing)
	}

	bad := []func(*Context){
		func(c *Context) { c.Name = "" },
		func(c *Context) { c.Grid.DeltaD = 0 },
		func(c *Context) { c.OutputBytes = 0 },
		func(c *Context) { c.Tau = 0 },
		func(c *Context) { c.Alpha = -1 },
		func(c *Context) { c.MaxParallelism = 0 },
		func(c *Context) { c.SMax = 0 },
		func(c *Context) { c.AlphaSmoothing = 1.5 },
		func(c *Context) { c.MaxCacheBytes = -1 },
	}
	for n, mutate := range bad {
		cc := *c
		mutate(&cc)
		if err := cc.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", n)
		}
	}
}

func TestContextCapacity(t *testing.T) {
	c := &Context{
		Name:          "cap",
		Grid:          Grid{DeltaD: 1, DeltaR: 10, Timesteps: 100},
		OutputBytes:   10,
		MaxCacheBytes: 55,
		Tau:           1,
	}
	c.ApplyDefaults()
	if got := c.CacheCapacitySteps(); got != 5 {
		t.Errorf("CacheCapacitySteps = %d, want 5", got)
	}
	if got := c.TotalOutputBytes(); got != 1000 {
		t.Errorf("TotalOutputBytes = %d, want 1000", got)
	}
}

func TestTauAt(t *testing.T) {
	c := &Context{
		Name:               "scale",
		Grid:               Grid{DeltaD: 1, DeltaR: 10, Timesteps: 100},
		OutputBytes:        1,
		Tau:                100,
		DefaultParallelism: 10,
		MaxParallelism:     40,
	}
	c.ApplyDefaults()
	if got := c.TauAt(10); got != 100 {
		t.Errorf("TauAt(default) = %v, want 100", got)
	}
	if got := c.TauAt(20); got != 50 {
		t.Errorf("TauAt(2x) = %v, want 50 (linear scaling)", got)
	}
	if got := c.TauAt(80); got != 25 {
		t.Errorf("TauAt(beyond max) = %v, want clamp to max => 25", got)
	}
	if got := c.TauAt(5); got != 200 {
		t.Errorf("TauAt(half) = %v, want 200", got)
	}
	if got := c.TauAt(0); got != 100 {
		t.Errorf("TauAt(0) = %v, want default 100", got)
	}
}

func TestNaming(t *testing.T) {
	c := &Context{Name: "clim", Grid: Grid{DeltaD: 1, DeltaR: 10, Timesteps: 100}, OutputBytes: 1, Tau: 1}
	c.ApplyDefaults()

	name := c.Filename(42)
	if name != "clim_out_00000042.nc" {
		t.Fatalf("Filename(42) = %q", name)
	}
	k, err := c.Key(name)
	if err != nil || k != 42 {
		t.Fatalf("Key(%q) = %d, %v", name, k, err)
	}
	if !c.IsOutputFile(name) {
		t.Error("IsOutputFile should accept own filenames")
	}
	for _, bad := range []string{
		"other_out_00000001.nc", "clim_out_abc.nc", "clim_out_00000001.h5",
		"clim_out_00000000.nc", "clim_out_-0000001.nc", "",
	} {
		if c.IsOutputFile(bad) {
			t.Errorf("IsOutputFile(%q) should be false", bad)
		}
	}
	if rn := c.RestartFilename(60); rn != "clim_out_restart_0000000060.nc" {
		t.Errorf("RestartFilename(60) = %q", rn)
	}
}

// Property: Key is the inverse of Filename and is strictly monotone.
func TestNamingRoundTripProperty(t *testing.T) {
	c := &Context{Name: "p", Grid: Grid{DeltaD: 1, DeltaR: 4, Timesteps: 1 << 20}, OutputBytes: 1, Tau: 1}
	c.ApplyDefaults()
	f := func(a, b uint32) bool {
		i, j := int(a%1000000)+1, int(b%1000000)+1
		ki, err1 := c.Key(c.Filename(i))
		kj, err2 := c.Key(c.Filename(j))
		if err1 != nil || err2 != nil {
			return false
		}
		if ki != i || kj != j {
			return false
		}
		// monotone: later output steps have larger keys
		if i > j && ki <= kj {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
