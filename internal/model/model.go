// Package model implements the simulation model of SimFS (paper Sec. II-A):
// forward-in-time simulations that emit output steps every Δd timesteps and
// restart steps every Δr timesteps. All quantities are integer timesteps;
// output steps are identified by their 1-based index i, written at timestep
// i·Δd. The package provides the timestep algebra used throughout the
// system: locating the closest previous restart step R(di), computing the
// re-simulation interval that covers a missing output step, and the miss
// cost used by the cost-aware replacement schemes (BCL/DCL).
package model

import (
	"errors"
	"fmt"
)

// Grid describes the temporal discretization of one simulation
// configuration: how often output steps and restart steps are produced.
type Grid struct {
	// DeltaD is the number of timesteps between two consecutive output
	// steps. Output step i is written at timestep i*DeltaD.
	DeltaD int
	// DeltaR is the number of timesteps between two consecutive restart
	// steps. Restart step j is written at timestep j*DeltaR. The
	// simulation can be restarted from any restart step (including the
	// initial conditions at timestep 0).
	DeltaR int
	// Timesteps is the total number of timesteps of the initial
	// simulation; the simulation covers timesteps (0, Timesteps].
	Timesteps int
}

// Validate reports whether the grid parameters are usable.
func (g Grid) Validate() error {
	switch {
	case g.DeltaD <= 0:
		return fmt.Errorf("model: DeltaD must be positive, got %d", g.DeltaD)
	case g.DeltaR <= 0:
		return fmt.Errorf("model: DeltaR must be positive, got %d", g.DeltaR)
	case g.Timesteps < 0:
		return fmt.Errorf("model: Timesteps must be non-negative, got %d", g.Timesteps)
	}
	return nil
}

// NumOutputSteps returns the number of output steps no = ⌊n/Δd⌋ produced
// by the initial simulation.
func (g Grid) NumOutputSteps() int { return g.Timesteps / g.DeltaD }

// NumRestartSteps returns the number of restart steps nr = ⌊n/Δr⌋ produced
// by the initial simulation (excluding the initial conditions at t=0).
func (g Grid) NumRestartSteps() int { return g.Timesteps / g.DeltaR }

// OutputTimestep returns the timestep at which output step i is written.
func (g Grid) OutputTimestep(i int) int { return i * g.DeltaD }

// ValidOutput reports whether i is a valid output step index for this grid.
func (g Grid) ValidOutput(i int) bool {
	return i >= 1 && i <= g.NumOutputSteps()
}

// RestartBefore returns the timestep of the closest restart step from which
// a re-simulation can produce output step i. This is the paper's R(di): the
// largest multiple of Δr strictly smaller than the timestep of output i
// (a simulation restarted exactly at i·Δd cannot reproduce output i, which
// spans the Δd timesteps ending at i·Δd).
func (g Grid) RestartBefore(i int) int {
	t := g.OutputTimestep(i)
	if t <= 0 {
		return 0
	}
	return ((t - 1) / g.DeltaR) * g.DeltaR
}

// RestartAfter returns the timestep of the first restart step at or after
// output step i. Re-simulations run "until at least the next restart step"
// (Sec. II-A) to exploit spatial locality.
func (g Grid) RestartAfter(i int) int {
	t := g.OutputTimestep(i)
	return ((t + g.DeltaR - 1) / g.DeltaR) * g.DeltaR
}

// MissCost returns the cost, in number of output steps that must be
// simulated, of a miss on output step i: the distance from its closest
// previous restart step. This is the miss cost used by BCL/DCL (Sec.
// III-D): "the distance, in number of output steps, from its closest
// previous restart step".
func (g Grid) MissCost(i int) int {
	r := g.RestartBefore(i)
	return i - r/g.DeltaD
}

// OutputsPerRestart returns Δr/Δd rounded up: the maximum number of output
// steps contained in one restart interval. This acts as the effective cache
// block size of the virtualization (Sec. V-A discussion of Fig. 12).
func (g Grid) OutputsPerRestart() int {
	return (g.DeltaR + g.DeltaD - 1) / g.DeltaD
}

// Interval is a half-open range of timesteps (Start, End] that a
// re-simulation covers. Output steps with Start < i·Δd ≤ End are produced.
type Interval struct {
	Start int // restart timestep the simulation boots from
	End   int // last timestep simulated (inclusive)
}

// Contains reports whether output step i (on grid g) is produced by a
// re-simulation covering the interval.
func (iv Interval) Contains(g Grid, i int) bool {
	t := g.OutputTimestep(i)
	return t > iv.Start && t <= iv.End
}

// Len returns the number of timesteps simulated.
func (iv Interval) Len() int { return iv.End - iv.Start }

// ErrOutOfRange is returned when an output step index is outside the
// simulated timeline.
var ErrOutOfRange = errors.New("model: output step out of simulated range")

// ResimInterval returns the minimal re-simulation interval that produces
// output step i and extends to the next restart step, clamped to the end of
// the simulated timeline.
func (g Grid) ResimInterval(i int) (Interval, error) {
	if !g.ValidOutput(i) {
		return Interval{}, fmt.Errorf("%w: i=%d, valid range [1,%d]", ErrOutOfRange, i, g.NumOutputSteps())
	}
	end := g.RestartAfter(i)
	if end > g.Timesteps {
		end = g.Timesteps
	}
	return Interval{Start: g.RestartBefore(i), End: end}, nil
}

// OutputsIn returns the inclusive range [first,last] of output step indices
// produced by a re-simulation covering iv. If the interval produces no
// output steps, ok is false.
func (g Grid) OutputsIn(iv Interval) (first, last int, ok bool) {
	first = iv.Start/g.DeltaD + 1
	last = iv.End / g.DeltaD
	if first > last {
		return 0, 0, false
	}
	return first, last, true
}

// ExtendToRestart rounds n output steps up to the nearest restart-interval
// multiple, as done when sizing prefetched re-simulations (Sec. IV-B1a:
// "We always round n up to the nearest restart interval multiple").
func (g Grid) ExtendToRestart(n int) int {
	opr := g.OutputsPerRestart()
	if n <= 0 {
		return opr
	}
	return (n + opr - 1) / opr * opr
}
