package model

import (
	"fmt"
	"time"
)

// Context is a simulation context (paper Sec. II-A): a simulator plus one
// of its configurations. Analyses operate on the output of a given context;
// multiple contexts may share restart files and offer different output
// granularities and re-simulation speeds. The context also carries the
// parameters the DV needs to manage its storage area and prefetching.
type Context struct {
	// Name identifies the context. Analyses select it via environment
	// variable (transparent mode) or SIMFS_Init (API mode).
	Name string

	// Grid is the temporal discretization of this configuration.
	Grid Grid

	// StorageDir is the storage area (a file-system directory) associated
	// with this context. Re-simulation output is redirected here.
	StorageDir string

	// MaxCacheBytes is the maximum size of the storage area. When usage
	// reaches this bound the DV applies the eviction policy.
	MaxCacheBytes int64

	// OutputBytes and RestartBytes are the (constant) sizes so, sr of one
	// output step and one restart step.
	OutputBytes  int64
	RestartBytes int64

	// Tau is τsim(P*): the time between the production of two consecutive
	// output steps at the context's default parallelism level.
	Tau time.Duration
	// Alpha is αsim: the restart latency of a re-simulation (resource
	// wait, restart-file read, model initialization), excluding batch
	// queueing time, which the batch substrate adds on top.
	Alpha time.Duration

	// DefaultParallelism is the parallelism level used for re-simulations
	// unless a prefetch agent raises it (strategy 1).
	DefaultParallelism int
	// MaxParallelism is the maximum parallelism level accepted by the
	// simulation driver.
	MaxParallelism int

	// SMax limits the number of re-simulations of this context that may
	// run concurrently (paper Sec. VI, smax).
	SMax int

	// RampUp, when true, starts prefetching with s=1 parallel simulations
	// and doubles at each prefetching step instead of launching sopt at
	// once (Sec. IV-B1b).
	RampUp bool

	// NoPrefetch disables the prefetch agents for this context, leaving
	// pure on-demand re-simulation (used by the caching evaluation and as
	// an ablation baseline).
	NoPrefetch bool

	// NonReproducible marks a simulator without bitwise reproducibility
	// (paper Sec. I): re-simulated files differ from the initial run's
	// output. Analyses detect this through SIMFS_Bitrep and must be
	// prepared to operate on the differing data.
	NonReproducible bool

	// AlphaSmoothing is the exponential-moving-average smoothing factor
	// used to track observed restart latencies (Sec. IV-C1c). 0 < f ≤ 1;
	// higher weights the most recent observation more.
	AlphaSmoothing float64

	// Upstream optionally names the context whose output is this
	// context's input, for virtualized simulation pipelines (Sec. III-E).
	// A miss on this context's input triggers a re-simulation upstream.
	Upstream string

	// FilePrefix and FileSuffix define the naming convention of output
	// step files; see Filename and ParseFilename.
	FilePrefix string
	FileSuffix string
}

// Validate reports whether the context is usable, applying no defaults.
func (c *Context) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("model: context has no name")
	}
	if err := c.Grid.Validate(); err != nil {
		return fmt.Errorf("context %q: %w", c.Name, err)
	}
	if c.MaxCacheBytes < 0 {
		return fmt.Errorf("context %q: negative MaxCacheBytes", c.Name)
	}
	if c.OutputBytes <= 0 {
		return fmt.Errorf("context %q: OutputBytes must be positive", c.Name)
	}
	if c.Tau <= 0 {
		return fmt.Errorf("context %q: Tau must be positive", c.Name)
	}
	if c.Alpha < 0 {
		return fmt.Errorf("context %q: Alpha must be non-negative", c.Name)
	}
	if c.DefaultParallelism <= 0 || c.MaxParallelism < c.DefaultParallelism {
		return fmt.Errorf("context %q: invalid parallelism levels (%d, %d)",
			c.Name, c.DefaultParallelism, c.MaxParallelism)
	}
	if c.SMax <= 0 {
		return fmt.Errorf("context %q: SMax must be positive", c.Name)
	}
	if c.AlphaSmoothing <= 0 || c.AlphaSmoothing > 1 {
		return fmt.Errorf("context %q: AlphaSmoothing must be in (0,1]", c.Name)
	}
	return nil
}

// ApplyDefaults fills zero-valued optional fields with sensible defaults.
func (c *Context) ApplyDefaults() {
	if c.DefaultParallelism == 0 {
		c.DefaultParallelism = 1
	}
	if c.MaxParallelism == 0 {
		c.MaxParallelism = c.DefaultParallelism
	}
	if c.SMax == 0 {
		c.SMax = 8
	}
	if c.AlphaSmoothing == 0 {
		c.AlphaSmoothing = 0.5
	}
	if c.FilePrefix == "" {
		c.FilePrefix = c.Name + "_out_"
	}
	if c.FileSuffix == "" {
		c.FileSuffix = ".nc"
	}
	if c.RestartBytes == 0 {
		c.RestartBytes = c.OutputBytes
	}
}

// CacheCapacitySteps returns how many output steps fit in the storage area.
func (c *Context) CacheCapacitySteps() int {
	if c.OutputBytes == 0 {
		return 0
	}
	return int(c.MaxCacheBytes / c.OutputBytes)
}

// TotalOutputBytes returns the data volume of the full simulation output.
func (c *Context) TotalOutputBytes() int64 {
	return int64(c.Grid.NumOutputSteps()) * c.OutputBytes
}

// TauAt returns τsim(p): the inter-production time at parallelism level p,
// modeled with linear strong scaling from the default level up to
// MaxParallelism. Levels below the default run proportionally slower. This
// matches the paper's use of a tunable parallelism level (Sec. III-B) while
// keeping the model simulator-agnostic.
func (c *Context) TauAt(p int) time.Duration {
	if p <= 0 {
		p = c.DefaultParallelism
	}
	if p > c.MaxParallelism {
		p = c.MaxParallelism
	}
	scaled := float64(c.Tau) * float64(c.DefaultParallelism) / float64(p)
	return time.Duration(scaled)
}
