package model

import (
	"fmt"
	"strconv"
	"strings"
)

// The naming convention (paper Sec. III-B): output step file names embed a
// key such that if output step di is produced after dj, then
// key(di) > key(dj). SimFS uses the key to find the closest restart step
// and to order files. The default convention is
// <prefix><8-digit zero-padded index><suffix>, e.g. "climate_out_00000042.nc".

// Filename returns the file name of output step i under the context's
// naming convention.
func (c *Context) Filename(i int) string {
	return fmt.Sprintf("%s%08d%s", c.FilePrefix, i, c.FileSuffix)
}

// RestartFilename returns the file name of the restart step written at
// timestep t (a multiple of Δr).
func (c *Context) RestartFilename(t int) string {
	return fmt.Sprintf("%srestart_%010d%s", c.FilePrefix, t, c.FileSuffix)
}

// Key parses an output step file name and returns its key (the output step
// index). It is the inverse of Filename. Key is monotone in production
// order, as required by the simulation driver contract.
func (c *Context) Key(name string) (int, error) {
	if !strings.HasPrefix(name, c.FilePrefix) || !strings.HasSuffix(name, c.FileSuffix) {
		return 0, fmt.Errorf("model: %q does not match naming convention %q*%q",
			name, c.FilePrefix, c.FileSuffix)
	}
	body := name[len(c.FilePrefix) : len(name)-len(c.FileSuffix)]
	i, err := strconv.Atoi(body)
	if err != nil {
		return 0, fmt.Errorf("model: %q has non-numeric key %q: %w", name, body, err)
	}
	if i < 1 {
		return 0, fmt.Errorf("model: %q has non-positive key %d", name, i)
	}
	return i, nil
}

// IsOutputFile reports whether name follows this context's output step
// naming convention.
func (c *Context) IsOutputFile(name string) bool {
	_, err := c.Key(name)
	return err == nil
}
