// Package des is a discrete-event simulation engine: a virtual clock and
// an event heap. The paper's experiments ran for hours of wall-clock on
// Piz Daint; the reproduction runs them in virtual time, which makes every
// benchmark fast and bit-for-bit deterministic while preserving all
// latency relationships (αsim, τsim, τcli) the paper's formulas are built
// on. The DV core is time-source agnostic: it reads time through the Clock
// interface, which either this engine or the wall clock implements.
package des

import (
	"container/heap"
	"time"
)

// Clock provides the current time as an offset from an arbitrary epoch.
type Clock interface {
	Now() time.Duration
}

// WallClock is a Clock backed by real time.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock whose zero is now.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) }

// Timer is a cancellable scheduled event.
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	index   int // heap index, -1 once popped
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t.stopped || t.index == -1 {
		return false
	}
	t.stopped = true
	return true
}

// When returns the virtual time the timer fires at.
func (t *Timer) When() time.Duration { return t.at }

// Engine is a single-threaded discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order (stable FIFO tie-break),
// which keeps experiments deterministic.
type Engine struct {
	now time.Duration
	pq  eventQueue
	seq uint64
	// processed counts fired events, for introspection and runaway
	// detection in tests.
	processed uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled (including
// stopped-but-unreaped timers).
func (e *Engine) Pending() int { return e.pq.Len() }

// Schedule enqueues fn to run after delay. Negative delays run "now" (at
// the current virtual time, after already-queued events for that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, tm)
	return tm
}

// Step fires the next event. It reports whether an event was fired.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		tm := heap.Pop(&e.pq).(*Timer)
		if tm.stopped {
			continue
		}
		e.now = tm.at
		e.processed++
		tm.fn()
		return true
	}
	return false
}

// Run fires events until none remain. maxEvents bounds runaway loops
// (0 = unbounded); it reports whether the queue drained.
func (e *Engine) Run(maxEvents uint64) bool {
	for {
		if maxEvents > 0 && e.processed >= maxEvents {
			return e.pq.Len() == 0
		}
		if !e.Step() {
			return true
		}
	}
}

// RunUntil fires events with timestamps ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for e.pq.Len() > 0 {
		tm := e.pq[0]
		if tm.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
