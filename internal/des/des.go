// Package des is a discrete-event simulation engine: a virtual clock and
// an event heap. The paper's experiments ran for hours of wall-clock on
// Piz Daint; the reproduction runs them in virtual time, which makes every
// benchmark fast and bit-for-bit deterministic while preserving all
// latency relationships (αsim, τsim, τcli) the paper's formulas are built
// on. The DV core is time-source agnostic: it reads time through the Clock
// interface, which either this engine or the wall clock implements.
//
// The scheduler stores events in a slab indexed by small integers and
// orders them with an inlined 4-ary min-heap over slab indices. Freed
// slots are recycled through a free list, so steady-state scheduling does
// not allocate: a self-rescheduling event loop (the shape of every DES
// experiment) runs at ~0 allocs/event. Timer handles are values carrying a
// generation counter, so a handle to a fired or stopped event is inert.
package des

import (
	"time"
)

// Clock provides the current time as an offset from an arbitrary epoch.
type Clock interface {
	Now() time.Duration
}

// WallClock is a Clock backed by real time.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock whose zero is now. WallClock is the one
// sanctioned bridge from real time into the clock interface: everything
// downstream takes a des.Clock and stays replayable by swapping it.
//
//simfs:allow wallclock WallClock is the sanctioned real-time Clock implementation
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
//
//simfs:allow wallclock WallClock is the sanctioned real-time Clock implementation
func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) }

// Timer is a cancellable handle to a scheduled event. It is a small value
// (no per-event heap allocation); the zero Timer is inert.
type Timer struct {
	e    *Engine
	at   time.Duration
	slot int32
	gen  uint32
}

// Stop cancels the timer if it has not fired, removing it from the event
// queue immediately. It reports whether the call prevented the event from
// firing.
func (t Timer) Stop() bool {
	if t.e == nil {
		return false
	}
	return t.e.stop(t.slot, t.gen)
}

// When returns the virtual time the timer was scheduled to fire at.
func (t Timer) When() time.Duration { return t.at }

// slot holds one scheduled event in the engine's slab. gen invalidates
// Timer handles once the slot is recycled; heapIdx is the slot's current
// position in the heap (-1 when not queued).
type slot struct {
	at      time.Duration
	seq     uint64
	fn      func()
	gen     uint32
	heapIdx int32
}

// Engine is a single-threaded discrete-event scheduler. Events scheduled
// for the same instant fire in scheduling order (stable FIFO tie-break),
// which keeps experiments deterministic.
type Engine struct {
	now time.Duration
	seq uint64
	// processed counts fired events, for introspection and runaway
	// detection in tests.
	processed uint64

	slab []slot
	free []int32 // recycled slab indices
	heap []int32 // 4-ary min-heap of slab indices, ordered by (at, seq)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled. Stopped timers
// are reaped from the queue immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run after delay. Negative delays run "now" (at
// the current virtual time, after already-queued events for that time).
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to now.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slab = append(e.slab, slot{})
		idx = int32(len(e.slab) - 1)
	}
	s := &e.slab[idx]
	s.at, s.seq, s.fn = t, e.seq, fn
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Timer{e: e, at: t, slot: idx, gen: s.gen}
}

// Step fires the next event. It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.removeAt(0)
	s := &e.slab[idx]
	e.now = s.at
	e.processed++
	fn := s.fn
	e.release(idx)
	fn()
	return true
}

// Run fires events until none remain. maxEvents bounds runaway loops
// (0 = unbounded); it reports whether the queue drained.
func (e *Engine) Run(maxEvents uint64) bool {
	for {
		if maxEvents > 0 && e.processed >= maxEvents {
			return len(e.heap) == 0
		}
		if !e.Step() {
			return true
		}
	}
}

// RunUntil fires events with timestamps ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.heap) > 0 {
		if e.slab[e.heap[0]].at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// stop cancels the event in the given slot if the generation still
// matches, reaping it from the heap in place. Eager reaping keeps the
// queue from growing unboundedly when long virtual runs cancel many
// prefetch timers.
func (e *Engine) stop(idx int32, gen uint32) bool {
	if int(idx) >= len(e.slab) {
		return false
	}
	s := &e.slab[idx]
	if s.gen != gen || s.heapIdx < 0 {
		return false
	}
	e.removeAt(int(s.heapIdx))
	e.release(idx)
	return true
}

// release recycles a slab slot, invalidating outstanding Timer handles.
func (e *Engine) release(idx int32) {
	s := &e.slab[idx]
	s.fn = nil
	s.gen++
	s.heapIdx = -1
	e.free = append(e.free, idx)
}

// less orders slab slots by (at, seq): earliest deadline first, FIFO on
// ties.
func (e *Engine) less(a, b int32) bool {
	x, y := &e.slab[a], &e.slab[b]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// removeAt deletes the heap element at position i and returns its slab
// index. The caller is responsible for releasing or re-queueing the slot.
func (e *Engine) removeAt(i int) int32 {
	n := len(e.heap) - 1
	idx := e.heap[i]
	if i != n {
		e.heap[i] = e.heap[n]
		e.slab[e.heap[i]].heapIdx = int32(i)
		e.heap = e.heap[:n]
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	} else {
		e.heap = e.heap[:n]
	}
	e.slab[idx].heapIdx = -1
	return idx
}

// siftUp restores the heap property upward from position i.
func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(idx, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slab[e.heap[i]].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = idx
	e.slab[idx].heapIdx = int32(i)
}

// siftDown restores the heap property downward from position i; it
// reports whether the element moved.
func (e *Engine) siftDown(i int) bool {
	idx := e.heap[i]
	n := len(e.heap)
	start := i
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if e.less(e.heap[k], e.heap[best]) {
				best = k
			}
		}
		if !e.less(e.heap[best], idx) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slab[e.heap[i]].heapIdx = int32(i)
		i = best
	}
	e.heap[i] = idx
	e.slab[idx].heapIdx = int32(i)
	return i > start
}
