package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if !e.Run(0) {
		t.Fatal("run did not drain")
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run(0)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(10, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should succeed")
	}
	if tm.Stop() {
		t.Error("second Stop should fail")
	}
	e.Run(0)
	if fired {
		t.Error("stopped timer fired")
	}
	if e.Processed() != 0 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(1, func() {})
	e.Run(0)
	if tm.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestNegativeDelayAndPastTime(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		tm := e.Schedule(-5, func() {})
		if tm.When() != 10 {
			t.Errorf("negative delay scheduled at %v", tm.When())
		}
		tm2 := e.At(3, func() {})
		if tm2.When() != 10 {
			t.Errorf("past At scheduled at %v", tm2.When())
		}
	})
	e.Run(0)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 || e.Now() != 12 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	e := NewEngine()
	var boom func()
	boom = func() { e.Schedule(1, boom) } // infinite chain
	e.Schedule(1, boom)
	if e.Run(100) {
		t.Error("bounded run of infinite chain should not drain")
	}
	if e.Processed() != 100 {
		t.Errorf("processed = %d", e.Processed())
	}
}

// Property: events fire in nondecreasing time order regardless of the
// insertion order, and the clock never goes backwards.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []time.Duration
		n := 200
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(1000))
			d := delays[i]
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		if !e.Run(0) {
			return false
		}
		if len(fired) != n {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return e.Now() == fired[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStopReapsImmediately(t *testing.T) {
	e := NewEngine()
	var timers []Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, e.Schedule(time.Duration(1000+i), func() {}))
	}
	e.Schedule(1, func() {})
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop of pending timer failed")
		}
	}
	// Stopped timers must leave the queue at Stop time, not at their
	// deadline: long virtual runs cancel many prefetch timers and the
	// queue must not grow with them.
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after stopping 100 timers, want 1", e.Pending())
	}
	if !e.Run(0) {
		t.Fatal("run did not drain")
	}
	if e.Processed() != 1 {
		t.Errorf("processed = %d, want 1", e.Processed())
	}
}

func TestStaleHandleAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	t1 := e.Schedule(10, func() {})
	if !t1.Stop() {
		t.Fatal("Stop failed")
	}
	// t2 recycles t1's slab slot; the stale handle must stay inert.
	fired := false
	t2 := e.Schedule(20, func() { fired = true })
	if t1.Stop() {
		t.Error("stale handle stopped a recycled slot")
	}
	e.Run(0)
	if !fired {
		t.Error("t2 did not fire")
	}
	if !fired || t2.When() != 20 {
		t.Errorf("t2.When() = %v", t2.When())
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Error("zero Timer Stop reported true")
	}
	if tm.When() != 0 {
		t.Error("zero Timer has a deadline")
	}
}

// Property: with a random subset of timers stopped at random points, the
// surviving events fire exactly once, in nondecreasing (time, seq) order.
func TestRandomStopProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 300
		fired := map[int]bool{}
		var order []time.Duration
		timers := make([]Timer, n)
		delays := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			i := i
			delays[i] = time.Duration(rng.Intn(50))
			timers[i] = e.Schedule(delays[i], func() {
				if fired[i] {
					t.Fatalf("event %d fired twice", i)
				}
				fired[i] = true
				order = append(order, e.Now())
			})
		}
		stopped := map[int]bool{}
		for i := 0; i < n/3; i++ {
			j := rng.Intn(n)
			if timers[j].Stop() {
				stopped[j] = true
			}
		}
		if !e.Run(0) {
			return false
		}
		for i := 0; i < n; i++ {
			if fired[i] == stopped[i] {
				return false
			}
		}
		return sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The engine must not allocate per event once the slab reaches steady
// state (the headline property of the slab + free-list design). Each
// measured run schedules and drains a fresh event chain, so the loop
// body actually exercises Schedule/Step; AllocsPerRun's warm-up call
// grows the slab once, and the free list must absorb every later run.
func TestSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < 1000 {
			e.Schedule(time.Microsecond, reschedule)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		n = 0
		e.Schedule(0, reschedule)
		for e.Step() {
		}
	})
	if e.Processed() < 6000 {
		t.Fatalf("measured runs fired only %d events in total", e.Processed())
	}
	if allocs > 0 {
		t.Errorf("steady-state event loop allocates %.1f allocs/run, want 0", allocs)
	}
}

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("wall clock did not advance: %v then %v", a, b)
	}
}
