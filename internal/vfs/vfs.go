// Package vfs is the storage substrate of the reproduction: the parallel
// file system the paper ran on (Lustre) reduced to what SimFS observes —
// named files with sizes inside per-context storage areas. Two
// implementations are provided: Mem, an in-memory area used by the
// virtual-time experiments, and Disk, a directory-backed area with real
// files used by the examples and integration tests. Both generate
// deterministic file contents so bitwise-reproducibility checks
// (SIMFS_Bitrep) are meaningful.
package vfs

import (
	"fmt"
	"sort"
	"sync"
)

// FS is one storage area: a flat namespace of files with sizes.
type FS interface {
	// Create writes a file of the given size with deterministic content
	// derived from its name. Creating an existing file overwrites it.
	Create(name string, size int64) error
	// Exists reports whether the file is present.
	Exists(name string) bool
	// Size returns the file's size.
	Size(name string) (int64, bool)
	// Read returns the file's content. Implementations may synthesize it
	// on the fly; it is deterministic for a given (name, size).
	Read(name string) ([]byte, error)
	// Remove deletes the file. Removing an absent file is an error.
	Remove(name string) error
	// List returns all file names in lexicographic order.
	List() []string
	// UsedBytes returns the total size of all files.
	UsedBytes() int64
}

// Mem is an in-memory storage area. It is safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	sizes map[string]int64
	used  int64
}

// NewMem returns an empty in-memory storage area.
func NewMem() *Mem {
	return &Mem{sizes: map[string]int64{}}
}

// Create implements FS.
func (m *Mem) Create(name string, size int64) error {
	if name == "" {
		return fmt.Errorf("vfs: empty file name")
	}
	if size < 0 {
		return fmt.Errorf("vfs: negative size %d for %q", size, name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.sizes[name]; ok {
		m.used -= old
	}
	m.sizes[name] = size
	m.used += size
	return nil
}

// Exists implements FS.
func (m *Mem) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.sizes[name]
	return ok
}

// Size implements FS.
func (m *Mem) Size(name string) (int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sizes[name]
	return s, ok
}

// Read implements FS: content is synthesized deterministically.
func (m *Mem) Read(name string) ([]byte, error) {
	m.mu.RLock()
	size, ok := m.sizes[name]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vfs: %q does not exist", name)
	}
	return Content(name, size), nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	size, ok := m.sizes[name]
	if !ok {
		return fmt.Errorf("vfs: remove of absent file %q", name)
	}
	m.used -= size
	delete(m.sizes, name)
	return nil
}

// List implements FS.
func (m *Mem) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.sizes))
	for n := range m.sizes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UsedBytes implements FS.
func (m *Mem) UsedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// Content deterministically synthesizes size bytes of pseudo-random
// content from a file name, using an xorshift generator seeded by an FNV
// hash of the name. Re-simulating a file therefore produces bitwise
// identical content — the reproducibility assumption of the paper — unless
// a caller deliberately perturbs it to model non-reproducible simulators.
func Content(name string, size int64) []byte {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	buf := make([]byte, size)
	x := h
	for i := range buf {
		// xorshift64
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}
