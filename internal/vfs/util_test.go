package vfs

import "os"

// writeFile is a tiny test helper kept out of the main test file so the
// conformance suite stays backend-agnostic.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
