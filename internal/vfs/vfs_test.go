package vfs

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

// conformance runs the shared FS contract against any implementation.
func conformance(t *testing.T, fs FS) {
	t.Helper()
	if fs.Exists("a") {
		t.Fatal("fresh FS should be empty")
	}
	if err := fs.Create("a", 100); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a") {
		t.Fatal("created file missing")
	}
	if s, ok := fs.Size("a"); !ok || s != 100 {
		t.Fatalf("Size = %d,%v", s, ok)
	}
	if fs.UsedBytes() != 100 {
		t.Fatalf("UsedBytes = %d", fs.UsedBytes())
	}
	// Overwrite adjusts accounting.
	if err := fs.Create("a", 50); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBytes() != 50 {
		t.Fatalf("UsedBytes after overwrite = %d", fs.UsedBytes())
	}
	if err := fs.Create("b", 25); err != nil {
		t.Fatal(err)
	}
	list := fs.List()
	if len(list) != 2 || list[0] != "a" || list[1] != "b" {
		t.Fatalf("List = %v", list)
	}
	// Deterministic content.
	c1, err := fs.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := fs.Read("a")
	if !bytes.Equal(c1, c2) || int64(len(c1)) != 50 {
		t.Fatal("content not deterministic or wrong length")
	}
	if _, err := fs.Read("ghost"); err == nil {
		t.Error("read of absent file should fail")
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Error("double remove should fail")
	}
	if fs.Exists("a") || fs.UsedBytes() != 25 {
		t.Errorf("after remove: exists=%v used=%d", fs.Exists("a"), fs.UsedBytes())
	}
	if err := fs.Create("", 1); err == nil {
		t.Error("empty name should fail")
	}
	if err := fs.Create("c", -1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestMemConformance(t *testing.T) { conformance(t, NewMem()) }

func TestDiskConformance(t *testing.T) {
	d, err := NewDisk(t.TempDir() + "/area")
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, d)
}

func TestDiskRejectsPathEscape(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"../evil", "a/b", "..", "."} {
		if err := d.Create(bad, 1); err == nil {
			t.Errorf("Create(%q) should fail", bad)
		}
	}
}

func TestContentDeterministicAndDistinct(t *testing.T) {
	a1 := Content("file_a", 256)
	a2 := Content("file_a", 256)
	b := Content("file_b", 256)
	if !bytes.Equal(a1, a2) {
		t.Error("same name must give identical content")
	}
	if bytes.Equal(a1, b) {
		t.Error("different names should give different content")
	}
	if len(Content("x", 0)) != 0 {
		t.Error("zero size should give empty content")
	}
}

// Property: Mem and Disk synthesize identical content for identical names,
// so checksums agree across storage backends.
func TestContentCrossBackendProperty(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMem()
	f := func(tag uint16, sz uint8) bool {
		name := "f_" + string(rune('a'+tag%26)) + string(rune('a'+(tag/26)%26))
		size := int64(sz)
		if err := d.Create(name, size); err != nil {
			return false
		}
		if err := m.Create(name, size); err != nil {
			return false
		}
		cd, err1 := d.Read(name)
		cm, err2 := m.Read(name)
		return err1 == nil && err2 == nil && bytes.Equal(cd, cm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemConcurrentAccess(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				m.Create(name, int64(i))
				m.Exists(name)
				m.Size(name)
				m.UsedBytes()
				m.List()
			}
		}(g)
	}
	wg.Wait()
	if got := len(m.List()); got != 8 {
		t.Errorf("files after concurrent churn = %d, want 8", got)
	}
}

func TestDiskListSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Create("real", 10)
	// Simulate a leftover temp file from a crashed writer.
	if err := writeFile(dir+"/.simfs-tmp-zzz", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	list := d.List()
	if len(list) != 1 || list[0] != "real" {
		t.Errorf("List = %v, temp files must be hidden", list)
	}
}
