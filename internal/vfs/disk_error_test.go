package vfs

import (
	"strings"
	"testing"
)

// Error-path coverage for the disk-backed storage area: invalid names
// must never touch the file system, sizes must be validated, and missing
// files must fail loudly on Remove/Read while staying benign on the
// query methods.

func TestDiskRejectsInvalidNames(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{"", ".", "..", "a/b", `a\b`, "/abs", "dir/../escape"}
	for _, name := range bad {
		if err := d.Create(name, 8); err == nil {
			t.Errorf("Create(%q) accepted an invalid name", name)
		}
		if err := d.WriteRaw(name, []byte("x")); err == nil {
			t.Errorf("WriteRaw(%q) accepted an invalid name", name)
		}
		if err := d.Remove(name); err == nil {
			t.Errorf("Remove(%q) accepted an invalid name", name)
		}
		if _, err := d.Read(name); err == nil {
			t.Errorf("Read(%q) accepted an invalid name", name)
		}
		if d.Exists(name) {
			t.Errorf("Exists(%q) = true for an invalid name", name)
		}
		if _, ok := d.Size(name); ok {
			t.Errorf("Size(%q) reported a size for an invalid name", name)
		}
	}
	// Invalid names must leave the directory untouched.
	if got := d.List(); len(got) != 0 {
		t.Errorf("directory not empty after invalid-name operations: %v", got)
	}
}

func TestDiskRejectsNegativeSize(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Create("f", -1); err == nil {
		t.Fatal("Create with negative size accepted")
	}
	if d.Exists("f") {
		t.Error("failed Create left a file behind")
	}
	// The atomic temp file must not leak either.
	if got := d.List(); len(got) != 0 {
		t.Errorf("leftover entries: %v", got)
	}
}

func TestDiskRemoveMissing(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	err = d.Remove("never-created")
	if err == nil {
		t.Fatal("Remove of a missing file reported success")
	}
	if !strings.Contains(err.Error(), "never-created") {
		t.Errorf("error %q does not name the file", err)
	}
	// Remove-after-remove keeps failing (no state corruption).
	if err := d.Create("f", 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("f"); err == nil {
		t.Error("second Remove of the same file reported success")
	}
}

func TestDiskReadMissing(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read("ghost"); err == nil {
		t.Error("Read of a missing file reported success")
	}
	if _, ok := d.Size("ghost"); ok {
		t.Error("Size of a missing file reported ok")
	}
	if d.Exists("ghost") {
		t.Error("Exists of a missing file reported true")
	}
}

func TestDiskTempFilesInvisible(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Create("visible", 16); err != nil {
		t.Fatal(err)
	}
	for _, n := range d.List() {
		if strings.HasPrefix(n, ".simfs-tmp-") {
			t.Errorf("temp file %q leaked into List", n)
		}
	}
	if ub := d.UsedBytes(); ub != 16 {
		t.Errorf("UsedBytes = %d, want 16", ub)
	}
}
