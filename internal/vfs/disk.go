package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a storage area backed by a real directory. File contents are the
// same deterministic streams Mem synthesizes, actually written to disk, so
// the integration tests exercise real I/O paths (create, rename-into-place,
// remove) the way the daemon would against a parallel file system.
type Disk struct {
	dir string
	mu  sync.Mutex
}

// NewDisk creates (if needed) and wraps the given directory.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: creating storage area %q: %w", dir, err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the backing directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return "", fmt.Errorf("vfs: invalid file name %q", name)
	}
	return filepath.Join(d.dir, name), nil
}

// Create implements FS: the file is written to a temporary name and
// renamed into place so concurrent observers never see partial files —
// mirroring the close-then-notify protocol of DVLib (paper Sec. III-A:
// "Once a file is closed, DVLib assumes that this file is ready on disk").
func (d *Disk) Create(name string, size int64) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("vfs: negative size %d for %q", size, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".simfs-tmp-*")
	if err != nil {
		return fmt.Errorf("vfs: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(Content(name, size)); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("vfs: writing %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("vfs: closing %q: %w", name, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("vfs: publishing %q: %w", name, err)
	}
	return nil
}

// WriteRaw writes explicit content under name (atomically, like Create).
// It is used to model non-reproducible simulators, whose re-simulated
// files differ from the deterministic stream.
func (d *Disk) WriteRaw(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".simfs-tmp-*")
	if err != nil {
		return fmt.Errorf("vfs: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("vfs: writing %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("vfs: closing %q: %w", name, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("vfs: publishing %q: %w", name, err)
	}
	return nil
}

// Exists implements FS.
func (d *Disk) Exists(name string) bool {
	p, err := d.path(name)
	if err != nil {
		return false
	}
	fi, err := os.Stat(p)
	return err == nil && fi.Mode().IsRegular()
}

// Size implements FS.
func (d *Disk) Size(name string) (int64, bool) {
	p, err := d.path(name)
	if err != nil {
		return 0, false
	}
	fi, err := os.Stat(p)
	if err != nil || !fi.Mode().IsRegular() {
		return 0, false
	}
	return fi.Size(), true
}

// Read implements FS.
func (d *Disk) Read(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("vfs: reading %q: %w", name, err)
	}
	return b, nil
}

// Remove implements FS.
func (d *Disk) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil {
		return fmt.Errorf("vfs: removing %q: %w", name, err)
	}
	return nil
}

// List implements FS.
func (d *Disk) List() []string {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && !strings.HasPrefix(e.Name(), ".simfs-tmp-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// UsedBytes implements FS.
func (d *Disk) UsedBytes() int64 {
	var total int64
	for _, n := range d.List() {
		if s, ok := d.Size(n); ok {
			total += s
		}
	}
	return total
}
