// Package trace generates the analysis access traces of the paper's
// caching evaluation (Sec. III-D, Fig. 5): forward, backward and random
// trajectories over the output step index space, plus an ECMWF-like
// archival trace synthesizer substituting for the proprietary ECFS access
// log (Zipf-skewed file popularity with bursty per-session locality —
// the structural properties that separate cost-aware schemes from pure
// recency ones).
//
// All generators are deterministic given a seed (math/rand), as required
// for reproducible experiments.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Pattern names an access-trajectory family.
type Pattern string

// The four access patterns evaluated in Figure 5.
const (
	Forward  Pattern = "Forward"
	Backward Pattern = "Backward"
	Random   Pattern = "Random"
	ECMWF    Pattern = "ECMWF"
)

// Patterns lists all trace families in the paper's plotting order.
func Patterns() []Pattern { return []Pattern{Backward, ECMWF, Forward, Random} }

// Access is one analysis access to an output step.
type Access struct {
	// Step is the 1-based output step index.
	Step int
	// Analysis identifies which synthetic analysis issued the access
	// (useful when traces are concatenated or interleaved).
	Analysis int
}

// Config parameterizes the synthetic analysis traces of Fig. 5: "we
// generate 50 traces starting their analysis at a random point of the
// simulation timeline and accessing a different number of output steps
// (randomly selected between 100 and 400)".
type Config struct {
	// NumSteps is the number of output steps of the virtualized
	// simulation (the index space is [1, NumSteps]).
	NumSteps int
	// NumAnalyses is the number of single-analysis traces to concatenate.
	NumAnalyses int
	// MinLen and MaxLen bound the per-analysis access count.
	MinLen, MaxLen int
	// Stride is the access stride k (1 = every output step).
	Stride int
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSteps < 1:
		return fmt.Errorf("trace: NumSteps must be ≥1, got %d", c.NumSteps)
	case c.NumAnalyses < 1:
		return fmt.Errorf("trace: NumAnalyses must be ≥1, got %d", c.NumAnalyses)
	case c.MinLen < 1 || c.MaxLen < c.MinLen:
		return fmt.Errorf("trace: invalid length bounds [%d,%d]", c.MinLen, c.MaxLen)
	case c.Stride < 1:
		return fmt.Errorf("trace: Stride must be ≥1, got %d", c.Stride)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.MinLen == 0 {
		c.MinLen = 100
	}
	if c.MaxLen == 0 {
		c.MaxLen = 400
	}
	if c.NumAnalyses == 0 {
		c.NumAnalyses = 50
	}
	return c
}

// Generate produces the concatenated trace for the given pattern.
func Generate(p Pattern, cfg Config) ([]Access, error) {
	return GenerateInto(nil, p, cfg)
}

// GenerateInto is Generate appending into dst's storage (the trace starts
// at dst[:0]); it returns the filled slice. The generated accesses are
// identical to Generate's for the same pattern and configuration — only
// the allocation behavior differs, letting rep loops reuse one buffer
// across repetitions instead of allocating a fresh trace slice per rep.
func GenerateInto(dst []Access, p Pattern, cfg Config) ([]Access, error) {
	return GenerateWith(rand.New(rand.NewSource(cfg.Seed)), dst, p, cfg)
}

// GenerateWith is GenerateInto reusing a caller-owned rng, re-seeded
// from cfg.Seed before use — the accesses are identical to Generate's
// for the same pattern and configuration, and a worker-pinned rng makes
// repeated regeneration allocation-free.
func GenerateWith(rng *rand.Rand, dst []Access, p Pattern, cfg Config) ([]Access, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng.Seed(cfg.Seed)
	dst = dst[:0]
	switch p {
	case Forward:
		return scans(dst, cfg, rng, +1), nil
	case Backward:
		return scans(dst, cfg, rng, -1), nil
	case Random:
		return randoms(dst, cfg, rng), nil
	case ECMWF:
		return ecmwfLike(dst, cfg, rng), nil
	}
	return nil, fmt.Errorf("trace: unknown pattern %q", p)
}

// scans builds NumAnalyses directional scans and concatenates them.
func scans(out []Access, cfg Config, rng *rand.Rand, dir int) []Access {
	for a := 0; a < cfg.NumAnalyses; a++ {
		n := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			n += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		start := rng.Intn(cfg.NumSteps) + 1
		step := start
		for i := 0; i < n; i++ {
			if step < 1 || step > cfg.NumSteps {
				break
			}
			out = append(out, Access{Step: step, Analysis: a})
			step += dir * cfg.Stride
		}
	}
	return out
}

// randoms builds uniformly random accesses.
func randoms(out []Access, cfg Config, rng *rand.Rand) []Access {
	for a := 0; a < cfg.NumAnalyses; a++ {
		n := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			n += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		for i := 0; i < n; i++ {
			out = append(out, Access{Step: rng.Intn(cfg.NumSteps) + 1, Analysis: a})
		}
	}
	return out
}

// ecmwfLike synthesizes an archival-access trace with the structural
// properties reported for the ECMWF ECFS log (Grawinkel et al., FAST'15,
// as used in the paper): a small hot set absorbs most accesses
// (Zipf-distributed popularity, s≈1.1) while sessions touch short runs of
// temporally adjacent steps (weather analyses read consecutive forecast
// steps). Popularity ranks are shuffled across the timeline so hot files
// are not all near t=0.
func ecmwfLike(out []Access, cfg Config, rng *rand.Rand) []Access {
	// Zipf over ranks; map rank → step through a fixed shuffle.
	perm := rng.Perm(cfg.NumSteps)
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(cfg.NumSteps-1))
	for a := 0; a < cfg.NumAnalyses; a++ {
		n := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			n += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		for i := 0; i < n; {
			anchor := perm[int(zipf.Uint64())] + 1
			// Bursty session: a short run around the anchor.
			run := 1 + rng.Intn(8)
			for j := 0; j < run && i < n; j++ {
				step := anchor + j
				if step > cfg.NumSteps {
					break
				}
				out = append(out, Access{Step: step, Analysis: a})
				i++
			}
		}
	}
	return out
}

// Interleave merges per-analysis subsequences of a trace so that a given
// fraction of each analysis's accesses overlap in time with other
// analyses (paper Sec. V-A: "the percentage of accesses that an analysis
// performs without being interleaved with others' execution"). overlap=0
// runs analyses strictly one after another; overlap=1 round-robins them.
func Interleave(trace []Access, overlap float64, seed int64) []Access {
	if overlap <= 0 || len(trace) == 0 {
		return append([]Access(nil), trace...)
	}
	if overlap > 1 {
		overlap = 1
	}
	// Split by analysis, preserving order.
	byA := map[int][]Access{}
	var order []int
	for _, acc := range trace {
		if _, ok := byA[acc.Analysis]; !ok {
			order = append(order, acc.Analysis)
		}
		byA[acc.Analysis] = append(byA[acc.Analysis], acc)
	}
	if len(order) == 1 {
		return append([]Access(nil), trace...)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Access, 0, len(trace))
	// Each analysis keeps a solo prefix of (1-overlap) of its accesses;
	// the remaining tails are merged round-robin in random order.
	var tails [][]Access
	for _, a := range order {
		seq := byA[a]
		solo := int(math.Round(float64(len(seq)) * (1 - overlap)))
		out = append(out, seq[:solo]...)
		if solo < len(seq) {
			tails = append(tails, seq[solo:])
		}
	}
	for len(tails) > 0 {
		i := rng.Intn(len(tails))
		out = append(out, tails[i][0])
		tails[i] = tails[i][1:]
		if len(tails[i]) == 0 {
			tails = append(tails[:i], tails[i+1:]...)
		}
	}
	return out
}

// Stats summarizes a trace for sanity checks and reporting.
type Stats struct {
	Accesses    int
	UniqueSteps int
	MinStep     int
	MaxStep     int
}

// Summarize computes trace statistics.
func Summarize(trace []Access) Stats {
	s := Stats{Accesses: len(trace)}
	seen := map[int]bool{}
	for i, a := range trace {
		if i == 0 || a.Step < s.MinStep {
			s.MinStep = a.Step
		}
		if a.Step > s.MaxStep {
			s.MaxStep = a.Step
		}
		seen[a.Step] = true
	}
	s.UniqueSteps = len(seen)
	return s
}
