package trace

import (
	"testing"
	"testing/quick"
)

func baseCfg(seed int64) Config {
	return Config{NumSteps: 1000, NumAnalyses: 10, MinLen: 50, MaxLen: 100, Stride: 1, Seed: seed}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumSteps: 0, NumAnalyses: 1, MinLen: 1, MaxLen: 2, Stride: 1},
		{NumSteps: 10, NumAnalyses: 0, MinLen: 1, MaxLen: 2, Stride: 1},
		{NumSteps: 10, NumAnalyses: 1, MinLen: 0, MaxLen: 2, Stride: 1},
		{NumSteps: 10, NumAnalyses: 1, MinLen: 3, MaxLen: 2, Stride: 1},
		{NumSteps: 10, NumAnalyses: 1, MinLen: 1, MaxLen: 2, Stride: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestGenerateUnknownPattern(t *testing.T) {
	if _, err := Generate(Pattern("Sideways"), baseCfg(1)); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestForwardIsMonotonePerAnalysis(t *testing.T) {
	tr, err := Generate(Forward, baseCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]int{}
	for _, a := range tr {
		if prev, ok := last[a.Analysis]; ok && a.Step != prev+1 {
			t.Fatalf("forward analysis %d jumped %d → %d", a.Analysis, prev, a.Step)
		}
		last[a.Analysis] = a.Step
	}
}

func TestBackwardIsMonotonePerAnalysis(t *testing.T) {
	tr, err := Generate(Backward, baseCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]int{}
	for _, a := range tr {
		if prev, ok := last[a.Analysis]; ok && a.Step != prev-1 {
			t.Fatalf("backward analysis %d jumped %d → %d", a.Analysis, prev, a.Step)
		}
		last[a.Analysis] = a.Step
	}
}

func TestStride(t *testing.T) {
	cfg := baseCfg(3)
	cfg.Stride = 5
	tr, err := Generate(Forward, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]int{}
	for _, a := range tr {
		if prev, ok := last[a.Analysis]; ok && a.Step != prev+5 {
			t.Fatalf("stride-5 analysis %d stepped %d → %d", a.Analysis, prev, a.Step)
		}
		last[a.Analysis] = a.Step
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range Patterns() {
		a, err := Generate(p, baseCfg(42))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(p, baseCfg(42))
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ across runs", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs across runs", p, i)
			}
		}
		c, _ := Generate(p, baseCfg(43))
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds gave identical traces", p)
		}
	}
}

// Property: all generated accesses are within the index space and the
// per-analysis access counts respect the configured bounds.
func TestBoundsProperty(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		p := Patterns()[int(which)%len(Patterns())]
		cfg := Config{NumSteps: 500, NumAnalyses: 5, MinLen: 20, MaxLen: 60, Stride: 1, Seed: seed}
		tr, err := Generate(p, cfg)
		if err != nil {
			return false
		}
		counts := map[int]int{}
		for _, a := range tr {
			if a.Step < 1 || a.Step > cfg.NumSteps {
				return false
			}
			counts[a.Analysis]++
		}
		for _, n := range counts {
			// Scans may be truncated at the timeline edge, so only the
			// upper bound is strict.
			if n > cfg.MaxLen {
				return false
			}
		}
		return len(counts) <= cfg.NumAnalyses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestECMWFIsSkewed(t *testing.T) {
	cfg := Config{NumSteps: 2000, NumAnalyses: 30, MinLen: 200, MaxLen: 400, Stride: 1, Seed: 11}
	tr, err := Generate(ECMWF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range tr {
		counts[a.Step]++
	}
	// Skew check: the hottest 10% of touched steps should absorb well
	// over 10% of accesses (Zipf-like popularity).
	var freqs []int
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	total := 0
	for _, n := range freqs {
		total += n
	}
	// selection: top decile by simple threshold sweep
	maxF := 0
	for _, n := range freqs {
		if n > maxF {
			maxF = n
		}
	}
	hot := 0
	for _, n := range freqs {
		if n >= maxF/4 {
			hot += n
		}
	}
	if float64(hot) < 0.2*float64(total) {
		t.Errorf("ECMWF trace not skewed enough: hot=%d total=%d unique=%d", hot, total, len(counts))
	}
}

func TestInterleaveZeroKeepsOrder(t *testing.T) {
	tr, _ := Generate(Forward, baseCfg(5))
	out := Interleave(tr, 0, 1)
	if len(out) != len(tr) {
		t.Fatal("length changed")
	}
	for i := range tr {
		if out[i] != tr[i] {
			t.Fatal("overlap=0 must preserve order")
		}
	}
}

// Property: Interleave is a permutation that preserves per-analysis order.
func TestInterleavePermutationProperty(t *testing.T) {
	f := func(seed int64, overlapPct uint8) bool {
		tr, err := Generate(Forward, baseCfg(seed))
		if err != nil {
			return false
		}
		overlap := float64(overlapPct%101) / 100
		out := Interleave(tr, overlap, seed)
		if len(out) != len(tr) {
			return false
		}
		// Per-analysis subsequences must be identical.
		split := func(t []Access) map[int][]int {
			m := map[int][]int{}
			for _, a := range t {
				m[a.Analysis] = append(m[a.Analysis], a.Step)
			}
			return m
		}
		ma, mb := split(tr), split(out)
		if len(ma) != len(mb) {
			return false
		}
		for k, va := range ma {
			vb := mb[k]
			if len(va) != len(vb) {
				return false
			}
			for i := range va {
				if va[i] != vb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterleaveHighOverlapMixes(t *testing.T) {
	tr, _ := Generate(Forward, Config{NumSteps: 1000, NumAnalyses: 4, MinLen: 50, MaxLen: 50, Stride: 1, Seed: 9})
	out := Interleave(tr, 1.0, 2)
	// With full overlap, the first few accesses should not all belong to
	// analysis 0.
	mixed := false
	for _, a := range out[:20] {
		if a.Analysis != out[0].Analysis {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Error("overlap=1 should interleave analyses")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Access{{Step: 5}, {Step: 2}, {Step: 5}, {Step: 9}})
	if s.Accesses != 4 || s.UniqueSteps != 3 || s.MinStep != 2 || s.MaxStep != 9 {
		t.Errorf("stats = %+v", s)
	}
	if z := Summarize(nil); z.Accesses != 0 || z.UniqueSteps != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestGenerateIntoMatchesGenerate(t *testing.T) {
	cfg := Config{NumSteps: 500, NumAnalyses: 10, MinLen: 20, MaxLen: 60, Stride: 1, Seed: 7}
	var buf []Access
	for _, p := range Patterns() {
		want, err := Generate(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Reusing one buffer across patterns must still reproduce each
		// pattern's trace exactly.
		buf, err = GenerateInto(buf, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != len(want) {
			t.Fatalf("%s: GenerateInto %d accesses, Generate %d", p, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("%s: access %d = %+v, want %+v", p, i, buf[i], want[i])
			}
		}
	}
	if _, err := GenerateInto(nil, Pattern("nope"), cfg); err == nil {
		t.Error("unknown pattern accepted")
	}
}
