// Package metrics is the measurement substrate of the reproduction — a
// stdlib substitute for the LibLSB scientific-benchmarking library the
// paper used. It provides robust summary statistics (median,
// bootstrap-free 95% confidence intervals on the median via order
// statistics), exponential moving averages (used by the DV to track
// restart latencies, Sec. IV-C1c), and an experiment recorder that prints
// the row/series layouts of the paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	// CILow and CIHigh bound the nonparametric 95% confidence interval of
	// the median (binomial order-statistic method, as recommended by the
	// scientific-benchmarking guidelines the paper follows).
	CILow  float64
	CIHigh float64
	Stddev float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)

	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(sq / float64(n-1))
	}

	lo, hi := medianCI95(n)
	return Summary{
		N:      n,
		Min:    s[0],
		Max:    s[n-1],
		Mean:   mean,
		Median: percentileSorted(s, 0.5),
		CILow:  s[lo],
		CIHigh: s[hi],
		Stddev: sd,
	}
}

// percentileSorted returns the p-quantile (0≤p≤1) of an ascending-sorted
// sample using linear interpolation.
func percentileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s[0]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return s[n-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// Percentile returns the p-quantile of xs (not necessarily sorted).
func Percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// medianCI95 returns the (0-based) order-statistic indices bounding a ~95%
// confidence interval of the median for a sample of size n, using the
// normal approximation to the binomial: rank = n/2 ± 1.96·√n/2.
func medianCI95(n int) (lo, hi int) {
	if n < 2 {
		return 0, n - 1
	}
	d := 1.96 * math.Sqrt(float64(n)) / 2
	lo = int(math.Floor(float64(n)/2 - d))
	hi = int(math.Ceil(float64(n)/2+d)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.4g [%.4g,%.4g] mean=%.4g sd=%.4g",
		s.N, s.Median, s.CILow, s.CIHigh, s.Mean, s.Stddev)
}

// EMA is an exponential moving average with smoothing factor f in (0,1]:
// v ← f·x + (1−f)·v. The DV uses it to track restart latencies so that
// "only the most recent observation" dominates (Sec. IV-C1c).
type EMA struct {
	f      float64
	v      float64
	primed bool
}

// NewEMA returns an EMA with the given smoothing factor. Factors outside
// (0,1] are clamped to 0.5.
func NewEMA(f float64) *EMA {
	if f <= 0 || f > 1 {
		f = 0.5
	}
	return &EMA{f: f}
}

// Observe folds a new observation into the average.
func (e *EMA) Observe(x float64) {
	if !e.primed {
		e.v = x
		e.primed = true
		return
	}
	e.v = e.f*x + (1-e.f)*e.v
}

// Value returns the current average, or def if nothing was observed yet.
func (e *EMA) Value(def float64) float64 {
	if !e.primed {
		return def
	}
	return e.v
}

// Primed reports whether at least one observation was folded in.
func (e *EMA) Primed() bool { return e.primed }

// Reset clears the average.
func (e *EMA) Reset() { e.primed = false; e.v = 0 }
