package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("mean = %v, want 2", s.Mean)
	}
	if math.Abs(s.Stddev-1) > 1e-12 {
		t.Errorf("stddev = %v, want 1", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Median != 7 || s.CILow != 7 || s.CIHigh != 7 || s.Stddev != 0 {
		t.Errorf("single summary: %+v", s)
	}
}

func TestMedianEvenSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", s.Median)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("percentile of empty sample should be NaN")
	}
}

// Property: Min ≤ CILow ≤ Median ≤ CIHigh ≤ Max, and the summary is
// invariant under permutation.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if !(s.Min <= s.CILow && s.CILow <= s.Median && s.Median <= s.CIHigh && s.CIHigh <= s.Max) {
			return false
		}
		// Permutation invariance: sort and re-summarize.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		s2 := Summarize(sorted)
		return s.Median == s2.Median && s.CILow == s2.CILow && s.CIHigh == s2.CIHigh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMedianCI95Bounds(t *testing.T) {
	for n := 1; n <= 300; n++ {
		lo, hi := medianCI95(n)
		if lo < 0 || hi > n-1 || lo > hi {
			t.Fatalf("medianCI95(%d) = (%d,%d) out of bounds", n, lo, hi)
		}
		mid := (n - 1) / 2
		if n >= 3 && (lo > mid || hi < mid) {
			t.Fatalf("medianCI95(%d) = (%d,%d) does not cover the median index %d", n, lo, hi, mid)
		}
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EMA should not be primed")
	}
	if got := e.Value(42); got != 42 {
		t.Errorf("unprimed Value = %v, want default", got)
	}
	e.Observe(10)
	if got := e.Value(0); got != 10 {
		t.Errorf("first observation = %v, want 10", got)
	}
	e.Observe(20)
	if got := e.Value(0); got != 15 {
		t.Errorf("after 10,20 = %v, want 15", got)
	}
	e.Observe(15)
	if got := e.Value(0); got != 15 {
		t.Errorf("after 10,20,15 = %v, want 15", got)
	}
	e.Reset()
	if e.Primed() {
		t.Error("reset EMA should be unprimed")
	}
}

func TestEMAClampsFactor(t *testing.T) {
	for _, f := range []float64{-1, 0, 1.5} {
		e := NewEMA(f)
		e.Observe(0)
		e.Observe(10)
		if got := e.Value(0); got != 5 {
			t.Errorf("clamped factor %v: value = %v, want 5", f, got)
		}
	}
	// f=1 keeps only the latest observation.
	e := NewEMA(1)
	e.Observe(3)
	e.Observe(9)
	if got := e.Value(0); got != 9 {
		t.Errorf("f=1 value = %v, want 9", got)
	}
}

func TestSeriesAndTable(t *testing.T) {
	tab := NewTable("Fig X", "smax", "time")
	fw := tab.Series("forward")
	for i := 0; i < 5; i++ {
		fw.Add("2", float64(100+i))
		fw.Add("4", float64(50+i))
	}
	tab.Series("backward").Add("2", 150)

	sum, ok := fw.At("2")
	if !ok || sum.N != 5 || sum.Median != 102 {
		t.Fatalf("series summary: %+v ok=%v", sum, ok)
	}
	if _, ok := fw.At("8"); ok {
		t.Error("missing x should not be found")
	}
	if xs := fw.Xs(); len(xs) != 2 || xs[0] != "2" || xs[1] != "4" {
		t.Errorf("Xs order: %v", xs)
	}

	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "forward", "backward", "smax", "102"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// backward has no value at x=4 → "-" placeholder.
	if !strings.Contains(out, "-") {
		t.Error("render should emit placeholder for missing cells")
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("Fig 15a", "storage", "compute")
	h.Set("0.1", "0.5", 1.0)
	h.Set("0.2", "0.5", 2.0)
	h.Set("0.1", "1.0", 0.5)
	if v, ok := h.At("0.2", "0.5"); !ok || v != 2.0 {
		t.Errorf("At = %v,%v", v, ok)
	}
	if _, ok := h.At("0.3", "0.5"); ok {
		t.Error("missing cell should not be found")
	}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 15a", "0.1", "1.000", "2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap render missing %q:\n%s", want, out)
		}
	}
}
