package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// LockStats summarizes the acquisition history of a ContendedMutex. The
// sharded Virtualizer exposes one per context shard, so operators can see
// whether a workload serializes on a single context.
type LockStats struct {
	// Acquisitions counts successful Lock calls.
	Acquisitions uint64
	// Contended counts acquisitions that had to wait for another holder.
	Contended uint64
	// Wait is the cumulative time spent blocked in contended acquisitions.
	Wait time.Duration
}

// Add accumulates other into s.
func (s *LockStats) Add(other LockStats) {
	s.Acquisitions += other.Acquisitions
	s.Contended += other.Contended
	s.Wait += other.Wait
}

// ContendedMutex is a sync.Mutex that counts acquisitions and contention.
// The fast path (uncontended TryLock) costs one atomic add over a plain
// mutex; the timing overhead is only paid when the lock is actually
// contended. The zero value is ready to use.
type ContendedMutex struct {
	mu           sync.Mutex
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	waitNs       atomic.Int64
}

// Lock acquires the mutex, recording contention if it had to wait.
//
//simfs:allow wallclock contention wait times are wall-time observability, not simulation state
func (m *ContendedMutex) Lock() {
	if m.mu.TryLock() {
		m.acquisitions.Add(1)
		return
	}
	start := time.Now()
	m.mu.Lock()
	m.waitNs.Add(int64(time.Since(start)))
	m.contended.Add(1)
	m.acquisitions.Add(1)
}

// Unlock releases the mutex.
func (m *ContendedMutex) Unlock() { m.mu.Unlock() }

// Stats returns a snapshot of the counters.
func (m *ContendedMutex) Stats() LockStats {
	return LockStats{
		Acquisitions: m.acquisitions.Load(),
		Contended:    m.contended.Load(),
		Wait:         time.Duration(m.waitNs.Load()),
	}
}
