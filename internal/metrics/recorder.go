package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one named line of a figure: x-values with one or more repeated
// y-measurements per x. It mirrors how the paper reports medians with 95%
// confidence intervals over repeated runs.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	points map[string]*point
	order  []string
}

type point struct {
	x  string
	ys []float64
}

// NewSeries creates an empty series.
func NewSeries(name, xlabel, ylabel string) *Series {
	return &Series{Name: name, XLabel: xlabel, YLabel: ylabel, points: map[string]*point{}}
}

// Add records one measurement y at position x.
func (s *Series) Add(x string, y float64) {
	p, ok := s.points[x]
	if !ok {
		p = &point{x: x}
		s.points[x] = p
		s.order = append(s.order, x)
	}
	p.ys = append(p.ys, y)
}

// At returns the summary at position x.
func (s *Series) At(x string) (Summary, bool) {
	p, ok := s.points[x]
	if !ok {
		return Summary{}, false
	}
	return Summarize(p.ys), true
}

// Xs returns the x positions in insertion order.
func (s *Series) Xs() []string { return append([]string(nil), s.order...) }

// Table collects several series sharing an x-axis and renders them as the
// rows the paper's figures plot.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	series []*Series
	byName map[string]*Series
}

// NewTable creates an empty figure table.
func NewTable(title, xlabel, ylabel string) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel, byName: map[string]*Series{}}
}

// Series returns (creating if needed) the series with the given name.
func (t *Table) Series(name string) *Series {
	if s, ok := t.byName[name]; ok {
		return s
	}
	s := NewSeries(name, t.XLabel, t.YLabel)
	t.byName[name] = s
	t.series = append(t.series, s)
	return s
}

// SeriesNames returns the series names in insertion order.
func (t *Table) SeriesNames() []string {
	names := make([]string, len(t.series))
	for i, s := range t.series {
		names[i] = s.Name
	}
	return names
}

// Render writes the table in an aligned text layout: one row per x value,
// one column per series, each cell "median [ciLow,ciHigh]" (single
// measurements print bare).
func (t *Table) Render(w io.Writer) error {
	// Union of x positions, preserving first-seen order across series.
	var xs []string
	seen := map[string]bool{}
	for _, s := range t.series {
		for _, x := range s.order {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	header := append([]string{t.XLabel}, t.SeriesNames()...)
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{x}
		for _, s := range t.series {
			sum, ok := s.At(x)
			switch {
			case !ok:
				row = append(row, "-")
			case sum.N == 1:
				row = append(row, fmt.Sprintf("%.4g", sum.Median))
			default:
				row = append(row, fmt.Sprintf("%.4g [%.4g,%.4g]", sum.Median, sum.CILow, sum.CIHigh))
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&b, "   (y: %s)\n", t.YLabel)
	}
	for r, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			b.WriteString(strings.Repeat("-", sum(widths)+2*len(widths)))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Heatmap is a 2-D grid of values, used for Figure 15a.
type Heatmap struct {
	Title          string
	XLabel, YLabel string
	cells          map[[2]string]float64
	xs, ys         []string
	xSeen, ySeen   map[string]bool
}

// NewHeatmap creates an empty heatmap.
func NewHeatmap(title, xlabel, ylabel string) *Heatmap {
	return &Heatmap{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		cells: map[[2]string]float64{}, xSeen: map[string]bool{}, ySeen: map[string]bool{},
	}
}

// Set stores the value at (x, y).
func (h *Heatmap) Set(x, y string, v float64) {
	if !h.xSeen[x] {
		h.xSeen[x] = true
		h.xs = append(h.xs, x)
	}
	if !h.ySeen[y] {
		h.ySeen[y] = true
		h.ys = append(h.ys, y)
	}
	h.cells[[2]string{x, y}] = v
}

// At returns the value at (x, y).
func (h *Heatmap) At(x, y string) (float64, bool) {
	v, ok := h.cells[[2]string{x, y}]
	return v, ok
}

// Render writes the heatmap as an aligned grid, highest y first (as the
// paper's axes are drawn).
func (h *Heatmap) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", h.Title)
	fmt.Fprintf(&b, "rows: %s (top→bottom), cols: %s\n", h.YLabel, h.XLabel)
	ys := append([]string(nil), h.ys...)
	sort.Sort(sort.Reverse(sort.StringSlice(ys)))
	fmt.Fprintf(&b, "%8s", "")
	for _, x := range h.xs {
		fmt.Fprintf(&b, "  %8s", x)
	}
	b.WriteByte('\n')
	for _, y := range ys {
		fmt.Fprintf(&b, "%8s", y)
		for _, x := range h.xs {
			if v, ok := h.At(x, y); ok {
				fmt.Fprintf(&b, "  %8.3f", v)
			} else {
				fmt.Fprintf(&b, "  %8s", "-")
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
