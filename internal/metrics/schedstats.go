package metrics

import "time"

// SchedClassWait accumulates the queueing delay of one scheduler priority
// class: how many jobs were admitted from the queue and how long they
// waited between enqueue and admission, in the scheduler's time source
// (virtual time under the DES, wall time under the daemon).
type SchedClassWait struct {
	// Jobs counts jobs of this class admitted from the queue (jobs
	// admitted immediately never enter the queue and are not counted).
	Jobs uint64
	// Wait is the cumulative enqueue→admission delay of those jobs.
	Wait time.Duration
}

// Mean returns the average per-job queueing delay (0 when no job of this
// class was ever queued).
func (w SchedClassWait) Mean() time.Duration {
	if w.Jobs == 0 {
		return 0
	}
	return w.Wait / time.Duration(w.Jobs)
}

// SchedStats summarizes the re-simulation scheduler (internal/sched): the
// fate of submitted launch requests and the queue behavior. The stats
// frame of the wire protocol carries the headline counters so operators
// can see queue pressure and coalescing effectiveness per daemon.
type SchedStats struct {
	// Submitted counts all launch requests handed to the scheduler.
	Submitted uint64
	// Admitted counts requests admitted (started) immediately.
	Admitted uint64
	// Queued counts requests that entered the queue as new jobs.
	Queued uint64
	// Coalesced counts requests merged into an already-queued job
	// instead of becoming jobs of their own.
	Coalesced uint64
	// Dropped counts prefetch requests rejected at capacity (the paper's
	// smax rule: a full DV does not prefetch).
	Dropped uint64
	// Canceled counts queued jobs removed before launch: de-queued when
	// their requesting client reset or disconnected, or dropped at
	// admission because their range had been produced meanwhile.
	Canceled uint64
	// Preempted counts running agent prefetches killed so a node-blocked
	// demand miss could take their nodes (the victim's interval is
	// requeued, not lost).
	Preempted uint64
	// Promoted counts queued prefetch jobs lifted to demand class by a
	// demand open landing inside their range (the scheduler's demand-join
	// rule, armed by Config.DemandJoin).
	Promoted uint64
	// QuotaRounds counts deficit-round-robin credit replenishments;
	// QuotaDeferred counts pops where per-client fairness overrode pure
	// submission order inside a priority class.
	QuotaRounds   uint64
	QuotaDeferred uint64
	// QueueDepth is the current number of queued jobs; MaxQueueDepth the
	// high-water mark.
	QueueDepth    int
	MaxQueueDepth int
	// Per-priority-class queueing delays.
	DemandWait SchedClassWait
	GuidedWait SchedClassWait
	AgentWait  SchedClassWait
}
