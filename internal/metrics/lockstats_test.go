package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestContendedMutexUncontended(t *testing.T) {
	var m ContendedMutex
	for i := 0; i < 5; i++ {
		m.Lock()
		m.Unlock()
	}
	st := m.Stats()
	if st.Acquisitions != 5 {
		t.Errorf("acquisitions = %d, want 5", st.Acquisitions)
	}
	if st.Contended != 0 || st.Wait != 0 {
		t.Errorf("uncontended lock recorded contention: %+v", st)
	}
}

func TestContendedMutexRecordsContention(t *testing.T) {
	var m ContendedMutex
	m.Lock()
	done := make(chan struct{})
	go func() {
		m.Lock() // blocks until the holder releases
		m.Unlock()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Unlock()
	<-done
	st := m.Stats()
	if st.Acquisitions != 2 {
		t.Errorf("acquisitions = %d, want 2", st.Acquisitions)
	}
	if st.Contended != 1 {
		t.Errorf("contended = %d, want 1", st.Contended)
	}
	if st.Wait <= 0 {
		t.Errorf("wait = %v, want > 0", st.Wait)
	}
}

func TestContendedMutexExcludes(t *testing.T) {
	// Mutual exclusion holds under load (verified by -race and the
	// counter check).
	var m ContendedMutex
	const workers = 8
	const rounds = 1000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Errorf("counter = %d, want %d", counter, workers*rounds)
	}
	if st := m.Stats(); st.Acquisitions != workers*rounds {
		t.Errorf("acquisitions = %d, want %d", st.Acquisitions, workers*rounds)
	}
}

func TestLockStatsAdd(t *testing.T) {
	a := LockStats{Acquisitions: 1, Contended: 2, Wait: 3}
	a.Add(LockStats{Acquisitions: 10, Contended: 20, Wait: 30})
	want := LockStats{Acquisitions: 11, Contended: 22, Wait: 33}
	if a != want {
		t.Errorf("sum = %+v, want %+v", a, want)
	}
}
