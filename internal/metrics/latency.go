package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of log2 histogram buckets. Bucket i
// holds durations whose nanosecond count has bit length i, i.e. the
// range [2^(i-1), 2^i). 64 buckets cover every possible int64
// duration.
const latencyBuckets = 64

// Histogram is a lock-free log2-bucketed latency histogram. Record
// costs one atomic add; quantiles are read by summing the buckets.
// Reported quantile values are the upper bound of the matched bucket,
// so they are exact to within a factor of 2 — plenty to tell a 50 us
// dispatch from a 4 ms re-simulation wait, at zero allocation on the
// serving path. The zero value is ready to use.
type Histogram struct {
	buckets [latencyBuckets]atomic.Uint64
}

// Record adds one observation. Non-positive durations land in the
// lowest bucket.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))%latencyBuckets].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of
// the recorded durations, or 0 if nothing was recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [latencyBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return time.Duration(upperBoundNs(i))
		}
	}
	return time.Duration(upperBoundNs(latencyBuckets - 1))
}

// upperBoundNs is the exclusive upper bound of bucket i, clamped so it
// never overflows int64.
func upperBoundNs(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// OpLatency is the per-operation summary surfaced through the stats
// frame: observation count plus p50/p99 upper bounds in nanoseconds.
type OpLatency struct {
	Op    string
	Count uint64
	P50   time.Duration
	P99   time.Duration
}

// LatencySet tracks one Histogram per operation name. The op set is
// fixed at construction so Record is a lock-free map read; ops not in
// the set are folded into a catch-all "other" histogram rather than
// dropped.
type LatencySet struct {
	order []string
	hists map[string]*Histogram
	other Histogram
}

// NewLatencySet builds a set tracking the given ops (in the given
// display order) plus an implicit "other" bucket.
func NewLatencySet(ops ...string) *LatencySet {
	s := &LatencySet{
		order: append([]string(nil), ops...),
		hists: make(map[string]*Histogram, len(ops)),
	}
	for _, op := range ops {
		if _, dup := s.hists[op]; !dup {
			s.hists[op] = &Histogram{}
		}
	}
	return s
}

// Record adds one observation for op.
func (s *LatencySet) Record(op string, d time.Duration) {
	if h, ok := s.hists[op]; ok {
		h.Record(d)
		return
	}
	s.other.Record(d)
}

// Summaries returns one OpLatency per op that has at least one
// observation, in construction order, with "other" last.
func (s *LatencySet) Summaries() []OpLatency {
	out := make([]OpLatency, 0, len(s.order)+1)
	for _, op := range s.order {
		h := s.hists[op]
		if n := h.Count(); n > 0 {
			out = append(out, OpLatency{Op: op, Count: n, P50: h.Quantile(0.50), P99: h.Quantile(0.99)})
		}
	}
	if n := s.other.Count(); n > 0 {
		out = append(out, OpLatency{Op: "other", Count: n, P50: s.other.Quantile(0.50), P99: s.other.Quantile(0.99)})
	}
	return out
}
