package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 99 observations around 1us, 1 around 1ms.
	for i := 0; i < 99; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Millisecond)

	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	p50 := h.Quantile(0.50)
	if p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want in [1us, 2us] (log2 bucket upper bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 > 2*time.Microsecond {
		t.Errorf("p99 = %v, want <= 2us (99th of 100 obs is still the 1us bucket)", p99)
	}
	p100 := h.Quantile(1.0)
	if p100 < time.Millisecond || p100 > 2*time.Millisecond {
		t.Errorf("p100 = %v, want in [1ms, 2ms]", p100)
	}
}

func TestHistogramEmptyAndNonPositive(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	h.Record(0)
	h.Record(-time.Second)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("non-positive observations p50 = %v, want 0", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
}

func TestLatencySetKnownAndOther(t *testing.T) {
	s := NewLatencySet("open", "wait")
	s.Record("open", 100*time.Nanosecond)
	s.Record("open", 100*time.Nanosecond)
	s.Record("wait", time.Millisecond)
	s.Record("bitrep", time.Microsecond) // not in the set

	sums := s.Summaries()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3 (open, wait, other): %+v", len(sums), sums)
	}
	if sums[0].Op != "open" || sums[0].Count != 2 {
		t.Errorf("first summary = %+v, want op=open count=2", sums[0])
	}
	if sums[1].Op != "wait" || sums[1].Count != 1 {
		t.Errorf("second summary = %+v, want op=wait count=1", sums[1])
	}
	if sums[2].Op != "other" || sums[2].Count != 1 {
		t.Errorf("third summary = %+v, want op=other count=1", sums[2])
	}
	if sums[1].P99 < time.Millisecond || sums[1].P99 > 2*time.Millisecond {
		t.Errorf("wait p99 = %v, want in [1ms, 2ms]", sums[1].P99)
	}
	// Ops with zero observations are omitted.
	s2 := NewLatencySet("open", "wait")
	s2.Record("open", time.Microsecond)
	if sums := s2.Summaries(); len(sums) != 1 || sums[0].Op != "open" {
		t.Errorf("summaries with one recorded op = %+v, want just open", sums)
	}
}

func TestLatencySetConcurrent(t *testing.T) {
	s := NewLatencySet("open")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Record("open", time.Microsecond)
				s.Record("stranger", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	sums := s.Summaries()
	if len(sums) != 2 || sums[0].Count != 4000 || sums[1].Count != 4000 {
		t.Fatalf("concurrent summaries = %+v, want open=4000 other=4000", sums)
	}
}
