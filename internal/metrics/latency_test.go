package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 99 observations around 1us, 1 around 1ms.
	for i := 0; i < 99; i++ {
		h.Record(time.Microsecond)
	}
	h.Record(time.Millisecond)

	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	p50 := h.Quantile(0.50)
	if p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want in [1us, 2us] (log2 bucket upper bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 > 2*time.Microsecond {
		t.Errorf("p99 = %v, want <= 2us (99th of 100 obs is still the 1us bucket)", p99)
	}
	p100 := h.Quantile(1.0)
	if p100 < time.Millisecond || p100 > 2*time.Millisecond {
		t.Errorf("p100 = %v, want in [1ms, 2ms]", p100)
	}
}

// TestHistogramExactQuantilesKnownStream pins the histogram's exact
// semantics on a hand-computed sample stream: observation v lands in
// log2 bucket bits.Len64(v) and Quantile reports that bucket's upper
// bound 2^i, with rank = floor(q*total) clamped to [1, total]. The
// stream below has bucket cumulative counts 10 (2ns bound), 90
// (128ns), 99 (16.384us), 100 (~8.39ms), so every quantile is an
// exact, stable value rather than a range.
func TestHistogramExactQuantilesKnownStream(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(1 * time.Nanosecond) // bits.Len64(1)=1  -> bound 2ns
	}
	for i := 0; i < 80; i++ {
		h.Record(100 * time.Nanosecond) // bits.Len64(100)=7 -> bound 128ns
	}
	for i := 0; i < 9; i++ {
		h.Record(10 * time.Microsecond) // bits.Len64(10000)=14 -> bound 16384ns
	}
	h.Record(5 * time.Millisecond) // bits.Len64(5e6)=23 -> bound 8388608ns

	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.01, 2 * time.Nanosecond}, // rank 1: first bucket
		{0.10, 2 * time.Nanosecond}, // rank 10: still the 1ns bucket
		{0.11, 128 * time.Nanosecond},
		{0.50, 128 * time.Nanosecond},
		{0.90, 128 * time.Nanosecond}, // rank 90: last obs of the 100ns bucket
		{0.91, 16384 * time.Nanosecond},
		{0.99, 16384 * time.Nanosecond},
		{1.00, 8388608 * time.Nanosecond}, // rank 100: the lone 5ms outlier
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileRankClamp pins the rank clamp: with a single
// observation every quantile — however small or large q — reports that
// observation's bucket bound.
func TestHistogramQuantileRankClamp(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Nanosecond)
	for _, q := range []float64{0.001, 0.5, 0.999, 1.0} {
		if got := h.Quantile(q); got != 128*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want 128ns (single-observation clamp)", q, got)
		}
	}
}

func TestLatencySetExactPercentiles(t *testing.T) {
	s := NewLatencySet("open", "wait")
	// open: 99 fast ops at 100ns, one 1ms straggler — p50 sits in the
	// 128ns bucket, p99 (rank 99) still does, only p100 sees the tail.
	for i := 0; i < 99; i++ {
		s.Record("open", 100*time.Nanosecond)
	}
	s.Record("open", time.Millisecond)

	sums := s.Summaries()
	if len(sums) != 1 || sums[0].Op != "open" || sums[0].Count != 100 {
		t.Fatalf("summaries = %+v, want one open entry with count 100", sums)
	}
	if sums[0].P50 != 128*time.Nanosecond {
		t.Errorf("open p50 = %v, want 128ns", sums[0].P50)
	}
	if sums[0].P99 != 128*time.Nanosecond {
		t.Errorf("open p99 = %v, want 128ns (rank 99 of 100 is still the fast bucket)", sums[0].P99)
	}
}

func TestHistogramEmptyAndNonPositive(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	h.Record(0)
	h.Record(-time.Second)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("non-positive observations p50 = %v, want 0", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
}

func TestLatencySetKnownAndOther(t *testing.T) {
	s := NewLatencySet("open", "wait")
	s.Record("open", 100*time.Nanosecond)
	s.Record("open", 100*time.Nanosecond)
	s.Record("wait", time.Millisecond)
	s.Record("bitrep", time.Microsecond) // not in the set

	sums := s.Summaries()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3 (open, wait, other): %+v", len(sums), sums)
	}
	if sums[0].Op != "open" || sums[0].Count != 2 {
		t.Errorf("first summary = %+v, want op=open count=2", sums[0])
	}
	if sums[1].Op != "wait" || sums[1].Count != 1 {
		t.Errorf("second summary = %+v, want op=wait count=1", sums[1])
	}
	if sums[2].Op != "other" || sums[2].Count != 1 {
		t.Errorf("third summary = %+v, want op=other count=1", sums[2])
	}
	if sums[1].P99 < time.Millisecond || sums[1].P99 > 2*time.Millisecond {
		t.Errorf("wait p99 = %v, want in [1ms, 2ms]", sums[1].P99)
	}
	// Ops with zero observations are omitted.
	s2 := NewLatencySet("open", "wait")
	s2.Record("open", time.Microsecond)
	if sums := s2.Summaries(); len(sums) != 1 || sums[0].Op != "open" {
		t.Errorf("summaries with one recorded op = %+v, want just open", sums)
	}
}

func TestLatencySetConcurrent(t *testing.T) {
	s := NewLatencySet("open")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Record("open", time.Microsecond)
				s.Record("stranger", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	sums := s.Summaries()
	if len(sums) != 2 || sums[0].Count != 4000 || sums[1].Count != 4000 {
		t.Fatalf("concurrent summaries = %+v, want open=4000 other=4000", sums)
	}
}
