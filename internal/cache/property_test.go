package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// opTrace drives a policy through a random operation sequence while an
// oracle map tracks expected residency. This is the core property test for
// all five schemes: whatever the internal structure (stacks, ghosts,
// adaptation), residency bookkeeping must match the oracle, victims must
// always be resident and unpinned, and Len must agree.
func runPolicyOracle(p Policy, seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	resident := map[string]bool{}
	pinned := map[string]bool{}
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("f%02d", i)
	}
	pick := func() string { return keys[rng.Intn(len(keys))] }

	for i := 0; i < steps; i++ {
		switch op := rng.Intn(100); {
		case op < 35: // insert
			k := pick()
			p.Insert(k, rng.Intn(12)+1)
			resident[k] = true
		case op < 55: // access
			k := pick()
			p.Access(k)
		case op < 75: // victim + evict
			isPinned := func(k string) bool { return pinned[k] }
			v, ok := p.Victim(isPinned)
			nResidentUnpinned := 0
			for k := range resident {
				if resident[k] && !pinned[k] {
					nResidentUnpinned++
				}
			}
			if !ok {
				if nResidentUnpinned > 0 {
					return fmt.Errorf("step %d: no victim though %d unpinned resident entries exist", i, nResidentUnpinned)
				}
				continue
			}
			if !resident[v] {
				return fmt.Errorf("step %d: victim %q not resident per oracle", i, v)
			}
			if pinned[v] {
				return fmt.Errorf("step %d: victim %q is pinned", i, v)
			}
			if !p.Contains(v) {
				return fmt.Errorf("step %d: victim %q not resident per policy", i, v)
			}
			p.Evict(v)
			resident[v] = false
		case op < 85: // remove
			k := pick()
			p.Remove(k)
			resident[k] = false
		case op < 95: // toggle pin on a resident key
			k := pick()
			if resident[k] {
				pinned[k] = !pinned[k]
			}
		default: // consistency audit
			n := 0
			for k, r := range resident {
				if r != p.Contains(k) {
					return fmt.Errorf("step %d: residency mismatch for %q: oracle=%v policy=%v", i, k, r, p.Contains(k))
				}
				if r {
					n++
				}
			}
			if p.Len() != n {
				return fmt.Errorf("step %d: Len=%d oracle=%d", i, p.Len(), n)
			}
		}
	}
	// Final full audit.
	n := 0
	for k, r := range resident {
		if r != p.Contains(k) {
			return fmt.Errorf("final residency mismatch for %q", k)
		}
		if r {
			n++
		}
	}
	if p.Len() != n {
		return fmt.Errorf("final Len=%d oracle=%d", p.Len(), n)
	}
	return nil
}

func TestPolicyOracleProperty(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				p, err := NewPolicy(name, 16)
				if err != nil {
					t.Fatal(err)
				}
				if err := runPolicyOracle(p, seed, 500); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: the Cache engine never exceeds capacity unless pins force an
// overflow, never evicts a pinned key, and its byte accounting matches the
// sum of resident sizes.
func TestCacheInvariantsProperty(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				p, _ := NewPolicy(name, 16)
				const capBytes = 160
				c := New(p, capBytes)
				sizes := map[string]int64{}
				pinCount := map[string]int{}

				for i := 0; i < 400; i++ {
					k := fmt.Sprintf("f%02d", rng.Intn(24))
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4:
						size := int64(rng.Intn(20) + 1)
						wasResident := c.Contains(k)
						evicted, err := c.Insert(k, size, rng.Intn(8)+1)
						if err != nil {
							return false
						}
						for _, e := range evicted {
							if pinCount[e] > 0 {
								t.Logf("pinned key %q evicted", e)
								return false
							}
							delete(sizes, e)
						}
						if !wasResident {
							sizes[k] = size
						}
					case 5, 6:
						c.Touch(k)
					case 7:
						if c.Contains(k) {
							if err := c.Pin(k); err != nil {
								return false
							}
							pinCount[k]++
						}
					case 8:
						if pinCount[k] > 0 {
							if err := c.Unpin(k); err != nil {
								return false
							}
							pinCount[k]--
						}
					case 9:
						c.Remove(k)
						delete(sizes, k)
						pinCount[k] = 0
					}
					var want int64
					for _, s := range sizes {
						want += s
					}
					if c.UsedBytes() != want {
						t.Logf("byte accounting drifted: used=%d want=%d", c.UsedBytes(), want)
						return false
					}
					if c.UsedBytes() > capBytes && c.Stats().PinBlocked == 0 {
						t.Logf("over capacity without pin pressure: %d", c.UsedBytes())
						return false
					}
					if c.Len() != len(sizes) {
						t.Logf("len mismatch: %d vs %d", c.Len(), len(sizes))
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: LIRS never reports more residents than inserted minus evicted,
// and drains cleanly even after heavy ghost churn.
func TestLIRSChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewLIRS(8)
		live := map[string]bool{}
		for i := 0; i < 600; i++ {
			k := fmt.Sprintf("x%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				p.Insert(k, 1)
				live[k] = true
			case 1:
				p.Access(k)
			case 2:
				if v, ok := p.Victim(nil); ok {
					p.Evict(v)
					delete(live, v)
				}
			}
			if p.Len() != len(live) {
				return false
			}
		}
		for {
			v, ok := p.Victim(nil)
			if !ok {
				break
			}
			p.Evict(v)
			delete(live, v)
		}
		return p.Len() == 0 && len(live) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: ARC's resident size never exceeds inserted entries and its
// adaptation parameter stays within [0, c].
func TestARCBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewARC(8)
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("y%d", rng.Intn(30))
			switch rng.Intn(3) {
			case 0:
				p.Insert(k, 1)
			case 1:
				p.Access(k)
			case 2:
				if p.Len() > 8 {
					if v, ok := p.Victim(nil); ok {
						p.Evict(v)
					}
				}
			}
			if p.p < 0 || p.p > p.c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
