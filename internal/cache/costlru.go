package cache

// Cost-sensitive LRU variants of Jeong & Dubois ("Cache replacement
// algorithms with nonuniform miss costs", IEEE ToC 2006), as adapted by the
// paper (Sec. III-D): the victim is not the LRU entry if a more recently
// used entry with a lower miss cost exists. Scanning from the LRU end
// toward the MRU end, the first entry with cost strictly lower than the
// LRU's (current, possibly depreciated) cost is selected; the LRU itself is
// the fallback. When the LRU entry is spared, its cost is depreciated — by
// the cost of the actually evicted entry — so that a costly but
// sporadically accessed entry cannot indefinitely force the eviction of
// cheaper, highly reused entries.
//
// BCL (basic) depreciates the LRU as soon as it is spared. DCL (dynamic)
// records the spared LRU and applies the depreciation only if the evicted
// non-LRU entry is re-inserted (i.e. missed on again) while the spared LRU
// entry is still resident and has not been re-accessed — evidence that
// sparing it was the wrong call.

// costLRU is the shared machinery of BCL and DCL.
type costLRU struct {
	name    string
	dynamic bool // false: BCL, true: DCL
	byKey   map[string]*node
	rec     list // MRU front … LRU back
	// pendingDepr maps an evicted victim key to the LRU key that was
	// spared at that eviction (DCL only).
	pendingDepr map[string]string
	// deprBy maps the spared-LRU key to the cost to subtract if the
	// depreciation triggers (DCL only).
	deprBy map[string]int
}

func newCostLRU(name string, dynamic bool) *costLRU {
	return &costLRU{
		name:        name,
		dynamic:     dynamic,
		byKey:       map[string]*node{},
		pendingDepr: map[string]string{},
		deprBy:      map[string]int{},
	}
}

// NewBCL returns the Basic Cost-Sensitive LRU policy.
func NewBCL() Policy { return newCostLRU("BCL", false) }

// NewDCL returns the Dynamic Cost-Sensitive LRU policy.
func NewDCL() Policy { return newCostLRU("DCL", true) }

// Name implements Policy.
func (p *costLRU) Name() string { return p.name }

// Access implements Policy.
func (p *costLRU) Access(key string) {
	nd, ok := p.byKey[key]
	if !ok {
		return
	}
	p.rec.moveToFront(nd)
	if p.dynamic {
		// A re-accessed spared LRU proved sparing right: cancel any
		// pending depreciation targeting it.
		p.cancelPendingFor(key)
	}
}

// Insert implements Policy.
func (p *costLRU) Insert(key string, cost int) {
	if nd, ok := p.byKey[key]; ok {
		nd.cost = cost
		p.Access(key)
		return
	}
	if p.dynamic {
		// Re-insertion of a previously evicted victim before the spared
		// LRU was re-accessed: the sparing caused this extra miss, so the
		// depreciation takes effect now.
		if lruKey, ok := p.pendingDepr[key]; ok {
			delete(p.pendingDepr, key)
			if nd, resident := p.byKey[lruKey]; resident {
				nd.cost -= p.deprBy[key]
				if nd.cost < 0 {
					nd.cost = 0
				}
			}
			delete(p.deprBy, key)
		}
	}
	nd := &node{key: key, cost: cost}
	p.byKey[key] = nd
	p.rec.pushFront(nd)
}

// Victim implements Policy: the first entry from the LRU end with cost
// strictly lower than the (unpinned) LRU entry; the LRU is the fallback.
func (p *costLRU) Victim(pinned func(string) bool) (string, bool) {
	isPinned := func(k string) bool { return pinned != nil && pinned(k) }

	// Find the effective LRU: the least recently used unpinned entry.
	var lru *node
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if !isPinned(nd.key) {
			lru = nd
			break
		}
	}
	if lru == nil {
		return "", false
	}
	// Scan from the LRU end towards the MRU end for a cheaper entry.
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if nd == lru || isPinned(nd.key) {
			continue
		}
		if nd.cost < lru.cost {
			p.sparedLRU(lru, nd)
			return nd.key, true
		}
	}
	return lru.key, true
}

// sparedLRU records that lru was spared in favor of evicting victim.
func (p *costLRU) sparedLRU(lru, victim *node) {
	if !p.dynamic {
		// BCL: depreciate immediately.
		lru.cost -= victim.cost
		if lru.cost < 0 {
			lru.cost = 0
		}
		return
	}
	// DCL: arm the depreciation; it fires if victim is missed on again
	// before lru is re-accessed.
	p.cancelPendingFor(lru.key) // at most one pending depreciation per LRU
	p.pendingDepr[victim.key] = lru.key
	p.deprBy[victim.key] = victim.cost
}

// cancelPendingFor drops pending depreciations that target lruKey.
func (p *costLRU) cancelPendingFor(lruKey string) {
	for victim, target := range p.pendingDepr {
		if target == lruKey {
			delete(p.pendingDepr, victim)
			delete(p.deprBy, victim)
		}
	}
}

// Evict implements Policy.
func (p *costLRU) Evict(key string) { p.removeResident(key) }

// Remove implements Policy.
func (p *costLRU) Remove(key string) {
	p.removeResident(key)
	if p.dynamic {
		delete(p.pendingDepr, key)
		delete(p.deprBy, key)
		p.cancelPendingFor(key)
	}
}

func (p *costLRU) removeResident(key string) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.remove(nd)
		delete(p.byKey, key)
	}
}

// Contains implements Policy.
func (p *costLRU) Contains(key string) bool { _, ok := p.byKey[key]; return ok }

// Len implements Policy.
func (p *costLRU) Len() int { return p.rec.len() }

// cost returns the current (possibly depreciated) cost of a resident key;
// exported for tests via the package-internal helper.
func (p *costLRU) costOf(key string) (int, bool) {
	nd, ok := p.byKey[key]
	if !ok {
		return 0, false
	}
	return nd.cost, true
}
