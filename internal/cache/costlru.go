package cache

// Cost-sensitive LRU variants of Jeong & Dubois ("Cache replacement
// algorithms with nonuniform miss costs", IEEE ToC 2006), as adapted by the
// paper (Sec. III-D): the victim is not the LRU entry if a more recently
// used entry with a lower miss cost exists. Scanning from the LRU end
// toward the MRU end, the first entry with cost strictly lower than the
// LRU's (current, possibly depreciated) cost is selected; the LRU itself is
// the fallback. When the LRU entry is spared, its cost is depreciated — by
// the cost of the actually evicted entry — so that a costly but
// sporadically accessed entry cannot indefinitely force the eviction of
// cheaper, highly reused entries.
//
// BCL (basic) depreciates the LRU as soon as it is spared. DCL (dynamic)
// records the spared LRU and applies the depreciation only if the evicted
// non-LRU entry is re-inserted (i.e. missed on again) while the spared LRU
// entry is still resident and has not been re-accessed — evidence that
// sparing it was the wrong call.

// costLRUOf is the shared machinery of BCL and DCL.
type costLRUOf[K comparable] struct {
	name    string
	dynamic bool // false: BCL, true: DCL
	byKey   map[K]*node[K]
	rec     list[K] // MRU front … LRU back
	// pendingDepr maps an evicted victim key to the LRU key that was
	// spared at that eviction (DCL only).
	pendingDepr map[K]K
	// deprBy maps the spared-LRU key to the cost to subtract if the
	// depreciation triggers (DCL only).
	deprBy map[K]int
	ar     arena[K]
}

// costLRU is the string-keyed instantiation (referenced by tests).
type costLRU = costLRUOf[string]

func newCostLRU[K comparable](name string, dynamic bool) *costLRUOf[K] {
	return &costLRUOf[K]{
		name:        name,
		dynamic:     dynamic,
		byKey:       map[K]*node[K]{},
		pendingDepr: map[K]K{},
		deprBy:      map[K]int{},
	}
}

// NewBCL returns the string-keyed Basic Cost-Sensitive LRU policy.
func NewBCL() Policy { return newCostLRU[string]("BCL", false) }

// NewDCL returns the string-keyed Dynamic Cost-Sensitive LRU policy.
func NewDCL() Policy { return newCostLRU[string]("DCL", true) }

// Name implements PolicyOf.
func (p *costLRUOf[K]) Name() string { return p.name }

// Access implements PolicyOf.
func (p *costLRUOf[K]) Access(key K) {
	nd, ok := p.byKey[key]
	if !ok {
		return
	}
	p.rec.moveToFront(nd)
	if p.dynamic {
		// A re-accessed spared LRU proved sparing right: cancel any
		// pending depreciation targeting it.
		p.cancelPendingFor(key)
	}
}

// Insert implements PolicyOf.
func (p *costLRUOf[K]) Insert(key K, cost int) {
	if nd, ok := p.byKey[key]; ok {
		nd.cost = cost
		p.Access(key)
		return
	}
	if p.dynamic {
		// Re-insertion of a previously evicted victim before the spared
		// LRU was re-accessed: the sparing caused this extra miss, so the
		// depreciation takes effect now.
		if lruKey, ok := p.pendingDepr[key]; ok {
			delete(p.pendingDepr, key)
			if nd, resident := p.byKey[lruKey]; resident {
				nd.cost -= p.deprBy[key]
				if nd.cost < 0 {
					nd.cost = 0
				}
			}
			delete(p.deprBy, key)
		}
	}
	nd := p.ar.get()
	nd.key, nd.cost = key, cost
	p.byKey[key] = nd
	p.rec.pushFront(nd)
}

// Victim implements PolicyOf: the first entry from the LRU end with cost
// strictly lower than the (unpinned) LRU entry; the LRU is the fallback.
func (p *costLRUOf[K]) Victim(pinned func(K) bool) (K, bool) {
	// The pinned checks are written inline (no wrapper closure): Victim
	// runs once per eviction on the replay hot path.

	// Find the effective LRU: the least recently used unpinned entry.
	var lru *node[K]
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if pinned == nil || !pinned(nd.key) {
			lru = nd
			break
		}
	}
	if lru == nil {
		var zero K
		return zero, false
	}
	// Scan from the LRU end towards the MRU end for a cheaper entry.
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if nd == lru || (pinned != nil && pinned(nd.key)) {
			continue
		}
		if nd.cost < lru.cost {
			p.sparedLRU(lru, nd)
			return nd.key, true
		}
	}
	return lru.key, true
}

// sparedLRU records that lru was spared in favor of evicting victim.
func (p *costLRUOf[K]) sparedLRU(lru, victim *node[K]) {
	if !p.dynamic {
		// BCL: depreciate immediately.
		lru.cost -= victim.cost
		if lru.cost < 0 {
			lru.cost = 0
		}
		return
	}
	// DCL: arm the depreciation; it fires if victim is missed on again
	// before lru is re-accessed.
	p.cancelPendingFor(lru.key) // at most one pending depreciation per LRU
	p.pendingDepr[victim.key] = lru.key
	p.deprBy[victim.key] = victim.cost
}

// cancelPendingFor drops pending depreciations that target lruKey.
func (p *costLRUOf[K]) cancelPendingFor(lruKey K) {
	for victim, target := range p.pendingDepr {
		if target == lruKey {
			delete(p.pendingDepr, victim)
			delete(p.deprBy, victim)
		}
	}
}

// Evict implements PolicyOf.
func (p *costLRUOf[K]) Evict(key K) { p.removeResident(key) }

// Remove implements PolicyOf.
func (p *costLRUOf[K]) Remove(key K) {
	p.removeResident(key)
	if p.dynamic {
		delete(p.pendingDepr, key)
		delete(p.deprBy, key)
		p.cancelPendingFor(key)
	}
}

func (p *costLRUOf[K]) removeResident(key K) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.remove(nd)
		delete(p.byKey, key)
		p.ar.put(nd)
	}
}

// Contains implements PolicyOf.
func (p *costLRUOf[K]) Contains(key K) bool { _, ok := p.byKey[key]; return ok }

// Len implements PolicyOf.
func (p *costLRUOf[K]) Len() int { return p.rec.len() }

// Reset implements PolicyOf.
func (p *costLRUOf[K]) Reset() {
	clear(p.byKey)
	clear(p.pendingDepr)
	clear(p.deprBy)
	p.ar.drain(&p.rec)
}

// costOf returns the current (possibly depreciated) cost of a resident key;
// exported for tests via the package-internal helper.
func (p *costLRUOf[K]) costOf(key K) (int, bool) {
	nd, ok := p.byKey[key]
	if !ok {
		return 0, false
	}
	return nd.cost, true
}
