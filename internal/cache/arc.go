package cache

// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST 2003) keeps two
// resident lists — T1 for entries seen once recently, T2 for entries seen
// at least twice — plus ghost lists B1 and B2 remembering recently evicted
// keys from each. A hit in B1 (resp. B2) grows (resp. shrinks) the
// adaptation target p, shifting capacity between recency and frequency at
// runtime "in order to adapt to the observed access pattern" (paper
// Sec. III-D).
type ARC struct {
	c     int // capacity in entries
	p     int // target size of T1
	t1    list
	t2    list
	b1    list
	b2    list
	where map[string]*arcEntry
}

type arcList int

const (
	inT1 arcList = iota
	inT2
	inB1
	inB2
)

type arcEntry struct {
	nd *node
	l  arcList
}

// NewARC returns an empty ARC policy with the given capacity in entries.
func NewARC(capacity int) *ARC {
	if capacity < 1 {
		capacity = 1
	}
	return &ARC{c: capacity, where: map[string]*arcEntry{}}
}

// Name implements Policy.
func (p *ARC) Name() string { return "ARC" }

func (p *ARC) listOf(l arcList) *list {
	switch l {
	case inT1:
		return &p.t1
	case inT2:
		return &p.t2
	case inB1:
		return &p.b1
	default:
		return &p.b2
	}
}

// Access implements Policy: a hit moves the entry to the MRU position of T2.
func (p *ARC) Access(key string) {
	e, ok := p.where[key]
	if !ok || (e.l != inT1 && e.l != inT2) {
		return
	}
	p.listOf(e.l).remove(e.nd)
	e.l = inT2
	p.t2.pushFront(e.nd)
}

// Insert implements Policy. Ghost hits adapt the target p exactly as in
// the original algorithm; the engine performs the actual eviction via
// Victim/Evict, so REPLACE here only trims ghost lists.
func (p *ARC) Insert(key string, cost int) {
	if e, ok := p.where[key]; ok {
		switch e.l {
		case inT1, inT2:
			p.Access(key)
			return
		case inB1:
			// Ghost hit in B1: favor recency.
			d := 1
			if p.b1.len() > 0 && p.b2.len()/p.b1.len() > 1 {
				d = p.b2.len() / p.b1.len()
			}
			p.p = min(p.c, p.p+d)
			p.b1.remove(e.nd)
			e.l = inT2
			p.t2.pushFront(e.nd)
			return
		case inB2:
			// Ghost hit in B2: favor frequency.
			d := 1
			if p.b2.len() > 0 && p.b1.len()/p.b2.len() > 1 {
				d = p.b1.len() / p.b2.len()
			}
			p.p = max(0, p.p-d)
			p.b2.remove(e.nd)
			e.l = inT2
			p.t2.pushFront(e.nd)
			return
		}
	}
	// Brand new key: enters T1. Trim ghost lists to the canonical bounds.
	if p.t1.len()+p.b1.len() >= p.c {
		if p.b1.len() > 0 {
			p.dropLRUGhost(&p.b1)
		}
	} else if p.t1.len()+p.t2.len()+p.b1.len()+p.b2.len() >= 2*p.c {
		if p.b2.len() > 0 {
			p.dropLRUGhost(&p.b2)
		}
	}
	nd := &node{key: key}
	p.where[key] = &arcEntry{nd: nd, l: inT1}
	p.t1.pushFront(nd)
}

func (p *ARC) dropLRUGhost(l *list) {
	nd := l.back
	if nd == nil {
		return
	}
	l.remove(nd)
	delete(p.where, nd.key)
}

// Victim implements Policy, following ARC's REPLACE rule: evict from T1
// when |T1| exceeds the target p, else from T2; within a list, prefer the
// LRU unpinned entry; fall back to the other list if the preferred one is
// fully pinned.
func (p *ARC) Victim(pinned func(string) bool) (string, bool) {
	isPinned := func(k string) bool { return pinned != nil && pinned(k) }
	scan := func(l *list) (string, bool) {
		for nd := l.back; nd != nil; nd = nd.prev {
			if !isPinned(nd.key) {
				return nd.key, true
			}
		}
		return "", false
	}
	first, second := &p.t1, &p.t2
	if p.t1.len() == 0 || (p.t1.len() <= p.p && p.t2.len() > 0) {
		first, second = &p.t2, &p.t1
	}
	if k, ok := scan(first); ok {
		return k, true
	}
	return scan(second)
}

// Evict implements Policy: the entry retires into the matching ghost list.
func (p *ARC) Evict(key string) {
	e, ok := p.where[key]
	if !ok {
		return
	}
	switch e.l {
	case inT1:
		p.t1.remove(e.nd)
		e.l = inB1
		p.b1.pushFront(e.nd)
	case inT2:
		p.t2.remove(e.nd)
		e.l = inB2
		p.b2.pushFront(e.nd)
	}
}

// Remove implements Policy.
func (p *ARC) Remove(key string) {
	e, ok := p.where[key]
	if !ok {
		return
	}
	p.listOf(e.l).remove(e.nd)
	delete(p.where, key)
}

// Contains implements Policy.
func (p *ARC) Contains(key string) bool {
	e, ok := p.where[key]
	return ok && (e.l == inT1 || e.l == inT2)
}

// Len implements Policy.
func (p *ARC) Len() int { return p.t1.len() + p.t2.len() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
