package cache

// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST 2003) keeps two
// resident lists — T1 for entries seen once recently, T2 for entries seen
// at least twice — plus ghost lists B1 and B2 remembering recently evicted
// keys from each. A hit in B1 (resp. B2) grows (resp. shrinks) the
// adaptation target p, shifting capacity between recency and frequency at
// runtime "in order to adapt to the observed access pattern" (paper
// Sec. III-D).
type arcOf[K comparable] struct {
	c     int // capacity in entries
	p     int // target size of T1
	t1    list[K]
	t2    list[K]
	b1    list[K]
	b2    list[K]
	where map[K]*node[K]
	ar    arena[K]
}

// ARC is the string-keyed ARC policy used by the Virtualizer.
type ARC = arcOf[string]

// arcList identifies which of the four lists a node is on; it is stored
// in the node's cost field (ARC is cost-oblivious), which spares a
// per-entry wrapper allocation.
type arcList = int

const (
	inT1 arcList = iota
	inT2
	inB1
	inB2
)

// NewARC returns an empty string-keyed ARC policy with the given capacity
// in entries.
func NewARC(capacity int) *ARC { return newARC[string](capacity) }

func newARC[K comparable](capacity int) *arcOf[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &arcOf[K]{c: capacity, where: map[K]*node[K]{}}
}

// Name implements PolicyOf.
func (p *arcOf[K]) Name() string { return "ARC" }

func (p *arcOf[K]) listOf(l arcList) *list[K] {
	switch l {
	case inT1:
		return &p.t1
	case inT2:
		return &p.t2
	case inB1:
		return &p.b1
	default:
		return &p.b2
	}
}

// Access implements PolicyOf: a hit moves the entry to the MRU position
// of T2.
func (p *arcOf[K]) Access(key K) {
	nd, ok := p.where[key]
	if !ok || (nd.cost != inT1 && nd.cost != inT2) {
		return
	}
	p.listOf(nd.cost).remove(nd)
	nd.cost = inT2
	p.t2.pushFront(nd)
}

// Insert implements PolicyOf. Ghost hits adapt the target p exactly as in
// the original algorithm; the engine performs the actual eviction via
// Victim/Evict, so REPLACE here only trims ghost lists.
func (p *arcOf[K]) Insert(key K, cost int) {
	if nd, ok := p.where[key]; ok {
		switch nd.cost {
		case inT1, inT2:
			p.Access(key)
			return
		case inB1:
			// Ghost hit in B1: favor recency.
			d := 1
			if p.b1.len() > 0 && p.b2.len()/p.b1.len() > 1 {
				d = p.b2.len() / p.b1.len()
			}
			p.p = min(p.c, p.p+d)
			p.b1.remove(nd)
			nd.cost = inT2
			p.t2.pushFront(nd)
			return
		case inB2:
			// Ghost hit in B2: favor frequency.
			d := 1
			if p.b2.len() > 0 && p.b1.len()/p.b2.len() > 1 {
				d = p.b1.len() / p.b2.len()
			}
			p.p = max(0, p.p-d)
			p.b2.remove(nd)
			nd.cost = inT2
			p.t2.pushFront(nd)
			return
		}
	}
	// Brand new key: enters T1. Trim ghost lists to the canonical bounds.
	if p.t1.len()+p.b1.len() >= p.c {
		if p.b1.len() > 0 {
			p.dropLRUGhost(&p.b1)
		}
	} else if p.t1.len()+p.t2.len()+p.b1.len()+p.b2.len() >= 2*p.c {
		if p.b2.len() > 0 {
			p.dropLRUGhost(&p.b2)
		}
	}
	nd := p.ar.get()
	nd.key, nd.cost = key, inT1
	p.where[key] = nd
	p.t1.pushFront(nd)
}

func (p *arcOf[K]) dropLRUGhost(l *list[K]) {
	nd := l.back
	if nd == nil {
		return
	}
	l.remove(nd)
	delete(p.where, nd.key)
	p.ar.put(nd)
}

// Victim implements PolicyOf, following ARC's REPLACE rule: evict from T1
// when |T1| exceeds the target p, else from T2; within a list, prefer the
// LRU unpinned entry; fall back to the other list if the preferred one is
// fully pinned.
func (p *arcOf[K]) Victim(pinned func(K) bool) (K, bool) {
	scan := func(l *list[K]) (K, bool) {
		for nd := l.back; nd != nil; nd = nd.prev {
			if pinned == nil || !pinned(nd.key) {
				return nd.key, true
			}
		}
		var zero K
		return zero, false
	}
	first, second := &p.t1, &p.t2
	if p.t1.len() == 0 || (p.t1.len() <= p.p && p.t2.len() > 0) {
		first, second = &p.t2, &p.t1
	}
	if k, ok := scan(first); ok {
		return k, true
	}
	return scan(second)
}

// Evict implements PolicyOf: the entry retires into the matching ghost
// list.
func (p *arcOf[K]) Evict(key K) {
	nd, ok := p.where[key]
	if !ok {
		return
	}
	switch nd.cost {
	case inT1:
		p.t1.remove(nd)
		nd.cost = inB1
		p.b1.pushFront(nd)
	case inT2:
		p.t2.remove(nd)
		nd.cost = inB2
		p.b2.pushFront(nd)
	}
}

// Remove implements PolicyOf.
func (p *arcOf[K]) Remove(key K) {
	nd, ok := p.where[key]
	if !ok {
		return
	}
	p.listOf(nd.cost).remove(nd)
	delete(p.where, key)
	p.ar.put(nd)
}

// Contains implements PolicyOf.
func (p *arcOf[K]) Contains(key K) bool {
	nd, ok := p.where[key]
	return ok && (nd.cost == inT1 || nd.cost == inT2)
}

// Len implements PolicyOf.
func (p *arcOf[K]) Len() int { return p.t1.len() + p.t2.len() }

// Reset implements PolicyOf.
func (p *arcOf[K]) Reset() {
	clear(p.where)
	p.ar.drain(&p.t1)
	p.ar.drain(&p.t2)
	p.ar.drain(&p.b1)
	p.ar.drain(&p.b2)
	p.p = 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
