package cache

// lruOf is the Least-Recently-Used replacement scheme: the victim is the
// resident entry whose last access is the furthest in the past.
type lruOf[K comparable] struct {
	byKey map[K]*node[K]
	rec   list[K] // MRU front … LRU back
	ar    arena[K]
}

// LRU is the string-keyed LRU policy used by the Virtualizer.
type LRU = lruOf[string]

// NewLRU returns an empty string-keyed LRU policy.
func NewLRU() *LRU { return newLRU[string]() }

func newLRU[K comparable]() *lruOf[K] {
	return &lruOf[K]{byKey: map[K]*node[K]{}}
}

// Name implements PolicyOf.
func (p *lruOf[K]) Name() string { return "LRU" }

// Access implements PolicyOf.
func (p *lruOf[K]) Access(key K) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.moveToFront(nd)
	}
}

// Insert implements PolicyOf.
func (p *lruOf[K]) Insert(key K, cost int) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.moveToFront(nd)
		return
	}
	nd := p.ar.get()
	nd.key, nd.cost = key, cost
	p.byKey[key] = nd
	p.rec.pushFront(nd)
}

// Victim implements PolicyOf: the least recently used unpinned entry.
func (p *lruOf[K]) Victim(pinned func(K) bool) (K, bool) {
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if pinned == nil || !pinned(nd.key) {
			return nd.key, true
		}
	}
	var zero K
	return zero, false
}

// Evict implements PolicyOf.
func (p *lruOf[K]) Evict(key K) { p.Remove(key) }

// Remove implements PolicyOf.
func (p *lruOf[K]) Remove(key K) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.remove(nd)
		delete(p.byKey, key)
		p.ar.put(nd)
	}
}

// Contains implements PolicyOf.
func (p *lruOf[K]) Contains(key K) bool { _, ok := p.byKey[key]; return ok }

// Len implements PolicyOf.
func (p *lruOf[K]) Len() int { return p.rec.len() }

// Reset implements PolicyOf.
func (p *lruOf[K]) Reset() {
	clear(p.byKey)
	p.ar.drain(&p.rec)
}
