package cache

// LRU is the Least-Recently-Used replacement scheme: the victim is the
// resident entry whose last access is the furthest in the past.
type LRU struct {
	byKey map[string]*node
	rec   list // MRU front … LRU back
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{byKey: map[string]*node{}}
}

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Access implements Policy.
func (p *LRU) Access(key string) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.moveToFront(nd)
	}
}

// Insert implements Policy.
func (p *LRU) Insert(key string, cost int) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.moveToFront(nd)
		return
	}
	nd := &node{key: key, cost: cost}
	p.byKey[key] = nd
	p.rec.pushFront(nd)
}

// Victim implements Policy: the least recently used unpinned entry.
func (p *LRU) Victim(pinned func(string) bool) (string, bool) {
	for nd := p.rec.back; nd != nil; nd = nd.prev {
		if pinned == nil || !pinned(nd.key) {
			return nd.key, true
		}
	}
	return "", false
}

// Evict implements Policy.
func (p *LRU) Evict(key string) { p.Remove(key) }

// Remove implements Policy.
func (p *LRU) Remove(key string) {
	if nd, ok := p.byKey[key]; ok {
		p.rec.remove(nd)
		delete(p.byKey, key)
	}
}

// Contains implements Policy.
func (p *LRU) Contains(key string) bool { _, ok := p.byKey[key]; return ok }

// Len implements Policy.
func (p *LRU) Len() int { return p.rec.len() }
