package cache

// node is an element of an intrusive doubly-linked recency list, generic
// over the key type: the Virtualizer keys entries by file name, the
// experiment replay paths by integer output-step index.
type node[K comparable] struct {
	key        K
	prev, next *node[K]
	// cost is the miss cost for cost-aware schemes; auxiliary state for
	// others (LIRS uses lir/resident flags instead).
	cost int
	// LIRS flags.
	lir      bool
	resident bool
}

// list is a doubly-linked list with sentinel-free head/tail pointers,
// ordered MRU (front) to LRU (back).
type list[K comparable] struct {
	front, back *node[K]
	n           int
}

func (l *list[K]) pushFront(nd *node[K]) {
	nd.prev = nil
	nd.next = l.front
	if l.front != nil {
		l.front.prev = nd
	}
	l.front = nd
	if l.back == nil {
		l.back = nd
	}
	l.n++
}

func (l *list[K]) pushBack(nd *node[K]) {
	nd.next = nil
	nd.prev = l.back
	if l.back != nil {
		l.back.next = nd
	}
	l.back = nd
	if l.front == nil {
		l.front = nd
	}
	l.n++
}

func (l *list[K]) remove(nd *node[K]) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		l.front = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		l.back = nd.prev
	}
	nd.prev, nd.next = nil, nil
	l.n--
}

func (l *list[K]) moveToFront(nd *node[K]) {
	if l.front == nd {
		return
	}
	l.remove(nd)
	l.pushFront(nd)
}

func (l *list[K]) len() int { return l.n }

// arena is a policy-local free list of recency nodes. Policies recycle
// nodes through it on eviction, removal and reset instead of letting the
// garbage collector reclaim them: a ReplayState reused across the
// repetitions of an experiment cell is pinned to one worker, so after
// the first replay warms the arena the policy churn allocates nothing.
// The singly-linked free chain reuses the nodes' own next pointers.
type arena[K comparable] struct {
	free *node[K]
}

// get returns a zeroed node, reusing a recycled one when available.
func (a *arena[K]) get() *node[K] {
	nd := a.free
	if nd == nil {
		return &node[K]{}
	}
	a.free = nd.next
	*nd = node[K]{}
	return nd
}

// put recycles one node.
func (a *arena[K]) put(nd *node[K]) {
	nd.prev = nil
	nd.next = a.free
	a.free = nd
}

// drain recycles every node of a list and empties it.
func (a *arena[K]) drain(l *list[K]) {
	for nd := l.front; nd != nil; {
		next := nd.next
		a.put(nd)
		nd = next
	}
	*l = list[K]{}
}
