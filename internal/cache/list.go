package cache

// node is an element of an intrusive doubly-linked recency list, generic
// over the key type: the Virtualizer keys entries by file name, the
// experiment replay paths by integer output-step index.
type node[K comparable] struct {
	key        K
	prev, next *node[K]
	// cost is the miss cost for cost-aware schemes; auxiliary state for
	// others (LIRS uses lir/resident flags instead).
	cost int
	// LIRS flags.
	lir      bool
	resident bool
}

// list is a doubly-linked list with sentinel-free head/tail pointers,
// ordered MRU (front) to LRU (back).
type list[K comparable] struct {
	front, back *node[K]
	n           int
}

func (l *list[K]) pushFront(nd *node[K]) {
	nd.prev = nil
	nd.next = l.front
	if l.front != nil {
		l.front.prev = nd
	}
	l.front = nd
	if l.back == nil {
		l.back = nd
	}
	l.n++
}

func (l *list[K]) pushBack(nd *node[K]) {
	nd.next = nil
	nd.prev = l.back
	if l.back != nil {
		l.back.next = nd
	}
	l.back = nd
	if l.front == nil {
		l.front = nd
	}
	l.n++
}

func (l *list[K]) remove(nd *node[K]) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		l.front = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		l.back = nd.prev
	}
	nd.prev, nd.next = nil, nil
	l.n--
}

func (l *list[K]) moveToFront(nd *node[K]) {
	if l.front == nd {
		return
	}
	l.remove(nd)
	l.pushFront(nd)
}

func (l *list[K]) len() int { return l.n }
