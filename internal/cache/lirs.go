package cache

// LIRS (Low Inter-reference Recency Set, Jiang & Zhang, SIGMETRICS 2002)
// partitions resident entries into LIR (low inter-reference recency, the
// protected majority) and HIR (high inter-reference recency) sets. It
// maintains the classic two structures:
//
//   - stack S: entries ordered by recency, holding LIR entries, resident
//     HIR entries, and non-resident HIR "ghosts" whose reuse distance is
//     still being observed;
//   - queue Q: resident HIR entries, the eviction candidates (front =
//     next victim).
//
// A HIR entry accessed while still on S has, by definition, an
// inter-reference recency smaller than the deepest LIR entry, so it is
// promoted to LIR and the bottom LIR entry is demoted to HIR. The stack is
// pruned so its bottom is always LIR. Ghost entries in S are bounded to
// 2× capacity to cap metadata.
type lirsOf[K comparable] struct {
	cap   int // total resident capacity (entries)
	lCap  int // target LIR set size
	byKey map[K]*node[K]
	s     list[K] // recency stack, front = most recent
	q     list[K] // resident HIR queue, front = next victim
	// qByKey tracks nodes linked into q via shadow nodes.
	qByKey map[K]*node[K]
	nLIR   int
	ghosts int
	// ar recycles both stack nodes and queue shadow nodes.
	ar arena[K]
}

// LIRS is the string-keyed LIRS policy used by the Virtualizer.
type LIRS = lirsOf[string]

// NewLIRS returns an empty string-keyed LIRS policy sized for the given
// capacity in entries. The HIR target is 1% of capacity (at least one
// entry), per the original paper's recommendation.
func NewLIRS(capacity int) *LIRS { return newLIRS[string](capacity) }

func newLIRS[K comparable](capacity int) *lirsOf[K] {
	if capacity < 2 {
		capacity = 2
	}
	hCap := capacity / 100
	if hCap < 1 {
		hCap = 1
	}
	return &lirsOf[K]{
		cap:    capacity,
		lCap:   capacity - hCap,
		byKey:  map[K]*node[K]{},
		qByKey: map[K]*node[K]{},
	}
}

// Name implements PolicyOf.
func (p *lirsOf[K]) Name() string { return "LIRS" }

// stack nodes are shared between bookkeeping maps; queue membership is
// represented by separate shadow nodes to keep the intrusive links simple.

func (p *lirsOf[K]) inS(nd *node[K]) bool {
	return nd.prev != nil || nd.next != nil || p.s.front == nd
}

// Access implements PolicyOf.
func (p *lirsOf[K]) Access(key K) {
	nd, ok := p.byKey[key]
	if !ok || !nd.resident {
		return
	}
	switch {
	case nd.lir:
		wasBottom := p.s.back == nd
		p.s.moveToFront(nd)
		if wasBottom {
			p.prune()
		}
	case p.inS(nd):
		// Resident HIR hit while on the stack: promote to LIR.
		p.s.moveToFront(nd)
		nd.lir = true
		p.nLIR++
		p.dequeue(key)
		p.demoteIfNeeded()
		p.prune()
	default:
		// Resident HIR hit, not on the stack: re-enter the stack, stay
		// HIR, move to the queue tail.
		p.s.pushFront(nd)
		if qn, ok := p.qByKey[key]; ok {
			p.q.remove(qn)
			p.q.pushBack(qn)
		}
	}
}

// Insert implements PolicyOf.
func (p *lirsOf[K]) Insert(key K, cost int) {
	if nd, ok := p.byKey[key]; ok && nd.resident {
		p.Access(key)
		return
	}
	if nd, ok := p.byKey[key]; ok {
		// Non-resident ghost on the stack: its reuse distance beats the
		// deepest LIR entry — promote to LIR.
		nd.resident = true
		p.ghosts--
		if p.inS(nd) {
			p.s.moveToFront(nd)
			nd.lir = true
			p.nLIR++
			p.demoteIfNeeded()
			p.prune()
			return
		}
		// Ghost fully aged out of the stack: treat as brand new below.
		delete(p.byKey, key)
		p.ar.put(nd)
	}
	nd := p.ar.get()
	nd.key, nd.resident = key, true
	p.byKey[key] = nd
	if p.nLIR < p.lCap {
		// Cold start: fill the LIR set first.
		nd.lir = true
		p.nLIR++
		p.s.pushFront(nd)
		return
	}
	// New entries start as resident HIR: on the stack and in the queue.
	p.s.pushFront(nd)
	p.enqueue(key)
	p.bound()
}

// Victim implements PolicyOf: the front of Q; if every queued entry is
// pinned, fall back to the deepest unpinned LIR entry on the stack.
func (p *lirsOf[K]) Victim(pinned func(K) bool) (K, bool) {
	for qn := p.q.front; qn != nil; qn = qn.next {
		if pinned == nil || !pinned(qn.key) {
			return qn.key, true
		}
	}
	for nd := p.s.back; nd != nil; nd = nd.prev {
		if nd.resident && (pinned == nil || !pinned(nd.key)) {
			return nd.key, true
		}
	}
	var zero K
	return zero, false
}

// Evict implements PolicyOf: the entry becomes a non-resident ghost if it
// is still on the stack (so LIRS can observe its reuse distance);
// otherwise it is forgotten.
func (p *lirsOf[K]) Evict(key K) {
	nd, ok := p.byKey[key]
	if !ok || !nd.resident {
		return
	}
	p.dequeue(key)
	if nd.lir {
		nd.lir = false
		p.nLIR--
	}
	nd.resident = false
	if p.inS(nd) {
		p.ghosts++
		p.prune()
		p.bound()
	} else {
		delete(p.byKey, key)
		p.ar.put(nd)
	}
}

// Remove implements PolicyOf.
func (p *lirsOf[K]) Remove(key K) {
	nd, ok := p.byKey[key]
	if !ok {
		return
	}
	if nd.resident {
		p.dequeue(key)
		if nd.lir {
			p.nLIR--
		}
	} else {
		p.ghosts--
	}
	if p.inS(nd) {
		p.s.remove(nd)
	}
	delete(p.byKey, key)
	p.ar.put(nd)
	p.prune()
}

// Contains implements PolicyOf.
func (p *lirsOf[K]) Contains(key K) bool {
	nd, ok := p.byKey[key]
	return ok && nd.resident
}

// Len implements PolicyOf.
func (p *lirsOf[K]) Len() int {
	n := 0
	for _, nd := range p.byKey {
		if nd.resident {
			n++
		}
	}
	return n
}

// Reset implements PolicyOf.
func (p *lirsOf[K]) Reset() {
	// Every stack node lives in byKey (resident HIR entries off the stack
	// included), so recycling byKey's values covers the stack; the queue
	// holds only shadow nodes, recycled by draining it.
	for _, nd := range p.byKey { //simfs:allow maporder free-list recycling permutes identical zeroed nodes only
		p.ar.put(nd)
	}
	clear(p.byKey)
	clear(p.qByKey)
	p.s = list[K]{}
	p.ar.drain(&p.q)
	p.nLIR = 0
	p.ghosts = 0
}

// demoteIfNeeded demotes the bottom LIR entry to resident HIR when the LIR
// set exceeds its target size.
func (p *lirsOf[K]) demoteIfNeeded() {
	for p.nLIR > p.lCap {
		bottom := p.s.back
		for bottom != nil && !bottom.lir {
			bottom = bottom.prev
		}
		if bottom == nil {
			return
		}
		bottom.lir = false
		p.nLIR--
		p.s.remove(bottom)
		if bottom.resident {
			p.enqueue(bottom.key)
		} else {
			delete(p.byKey, bottom.key)
			p.ghosts--
			p.ar.put(bottom)
		}
		p.prune()
	}
}

// prune removes non-LIR entries from the stack bottom, forgetting ghosts
// that fall off.
func (p *lirsOf[K]) prune() {
	for p.s.back != nil && !p.s.back.lir {
		nd := p.s.back
		p.s.remove(nd)
		if !nd.resident {
			p.ghosts--
			delete(p.byKey, nd.key)
			p.ar.put(nd)
		}
		// Resident HIR entries falling off the stack stay in the queue
		// and in byKey.
	}
}

// bound caps ghost metadata at 2× capacity by aging the deepest ghosts.
func (p *lirsOf[K]) bound() {
	for p.ghosts > 2*p.cap {
		var oldest *node[K]
		for nd := p.s.back; nd != nil; nd = nd.prev {
			if !nd.resident {
				oldest = nd
				break
			}
		}
		if oldest == nil {
			return
		}
		p.s.remove(oldest)
		delete(p.byKey, oldest.key)
		p.ghosts--
		p.ar.put(oldest)
	}
}

func (p *lirsOf[K]) enqueue(key K) {
	if _, ok := p.qByKey[key]; ok {
		return
	}
	qn := p.ar.get()
	qn.key = key
	p.qByKey[key] = qn
	p.q.pushBack(qn)
}

func (p *lirsOf[K]) dequeue(key K) {
	if qn, ok := p.qByKey[key]; ok {
		p.q.remove(qn)
		delete(p.qByKey, key)
		p.ar.put(qn)
	}
}
