package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// The replay hot path runs the policies over integer output-step keys.
// The schemes are key-agnostic — every decision depends on recency,
// cost and ghost state, never on the key value — so the int-keyed
// instantiation must mirror the string-keyed one operation for operation.
func TestIntKeyedPolicyMirrorsString(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				ps, err := NewPolicy(name, 16)
				if err != nil {
					t.Fatal(err)
				}
				pi, err := NewPolicyOf[int](name, 16)
				if err != nil {
					t.Fatal(err)
				}
				str := func(k int) string { return fmt.Sprintf("f%02d", k) }
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 400; i++ {
					k := rng.Intn(32)
					switch rng.Intn(4) {
					case 0:
						cost := rng.Intn(12) + 1
						ps.Insert(str(k), cost)
						pi.Insert(k, cost)
					case 1:
						ps.Access(str(k))
						pi.Access(k)
					case 2:
						vs, oks := ps.Victim(nil)
						vi, oki := pi.Victim(nil)
						if oks != oki {
							t.Logf("step %d: victim ok mismatch %v vs %v", i, oks, oki)
							return false
						}
						if oks {
							if vs != str(vi) {
								t.Logf("step %d: victim %q vs %d", i, vs, vi)
								return false
							}
							ps.Evict(vs)
							pi.Evict(vi)
						}
					case 3:
						if ps.Contains(str(k)) != pi.Contains(k) {
							t.Logf("step %d: residency mismatch for %d", i, k)
							return false
						}
					}
					if ps.Len() != pi.Len() {
						t.Logf("step %d: Len %d vs %d", i, ps.Len(), pi.Len())
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Reset must return a policy to its freshly constructed behavior: a
// sequence replayed after Reset sees the same victims as on a new policy.
func TestPolicyResetEqualsFresh(t *testing.T) {
	drive := func(p PolicyOf[int], seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		var victims []int
		for i := 0; i < 300; i++ {
			k := rng.Intn(24)
			switch rng.Intn(3) {
			case 0:
				p.Insert(k, rng.Intn(8)+1)
			case 1:
				p.Access(k)
			case 2:
				if v, ok := p.Victim(nil); ok {
					p.Evict(v)
					victims = append(victims, v)
				}
			}
		}
		return victims
	}
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			reused, err := NewPolicyOf[int](name, 16)
			if err != nil {
				t.Fatal(err)
			}
			drive(reused, 1) // dirty the state
			reused.Reset()
			if reused.Len() != 0 {
				t.Fatalf("Len after Reset = %d", reused.Len())
			}
			if _, ok := reused.Victim(nil); ok {
				t.Fatal("reset policy proposed a victim")
			}
			fresh, err := NewPolicyOf[int](name, 16)
			if err != nil {
				t.Fatal(err)
			}
			got, want := drive(reused, 2), drive(fresh, 2)
			if len(got) != len(want) {
				t.Fatalf("victim count %d vs fresh %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("victim %d: %d vs fresh %d (Reset leaked state)", i, got[i], want[i])
				}
			}
		})
	}
}

// Cache.Reset must clear residency, byte accounting, pins and stats.
func TestCacheReset(t *testing.T) {
	p, err := NewPolicyOf[int]("DCL", 8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewOf(p, 8)
	for i := 0; i < 12; i++ {
		if _, err := c.Insert(i, 1, i%5+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Pin(11); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Errorf("after Reset: len=%d used=%d", c.Len(), c.UsedBytes())
	}
	if c.Stats() != (Stats{}) {
		t.Errorf("after Reset: stats=%+v", c.Stats())
	}
	if c.PinCount(11) != 0 {
		t.Error("pin survived Reset")
	}
	// The cache must be fully usable after Reset.
	if _, err := c.Insert(3, 4, 2); err != nil {
		t.Fatal(err)
	}
	if !c.Touch(3) || c.UsedBytes() != 4 {
		t.Error("cache unusable after Reset")
	}
}

// InsertDiscard must evict exactly like Insert, reporting the count.
func TestInsertDiscardMatchesInsert(t *testing.T) {
	pa, _ := NewPolicyOf[int]("LRU", 8)
	pb, _ := NewPolicyOf[int]("LRU", 8)
	a, b := NewOf(pa, 8), NewOf(pb, 8)
	for i := 0; i < 32; i++ {
		evicted, err := a.Insert(i, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		n, err := b.InsertDiscard(i, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(evicted) {
			t.Fatalf("insert %d: InsertDiscard=%d Insert evicted %v", i, n, evicted)
		}
	}
	if a.Len() != b.Len() || a.UsedBytes() != b.UsedBytes() || a.Stats() != b.Stats() {
		t.Errorf("divergence: a{len=%d used=%d %+v} b{len=%d used=%d %+v}",
			a.Len(), a.UsedBytes(), a.Stats(), b.Len(), b.UsedBytes(), b.Stats())
	}
}
