package cache

import (
	"errors"
	"fmt"
)

// Stats counts cache events.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// PinBlocked counts inserts that exceeded capacity because every
	// eviction candidate was pinned; the cache temporarily overflows in
	// that case, as SimFS must keep files that analyses hold open.
	PinBlocked int64
}

// CacheOf is the byte-accounting eviction engine that SimFS runs over one
// storage area, generic over the key type. It combines a replacement
// policy with file sizes and reference counts (pins): an output step "can
// be evicted only if its reference counter is zero" (paper Sec. III-A).
type CacheOf[K comparable] struct {
	policy   PolicyOf[K]
	maxBytes int64
	used     int64
	sizes    map[K]int64
	pins     map[K]int
	stats    Stats
	// pinnedFn is the isPinned method value, bound once: taking it per
	// Victim call would allocate a closure on every eviction.
	pinnedFn func(K) bool
}

// Cache is the string-keyed engine used by the Virtualizer, whose keys
// are file names.
type Cache = CacheOf[string]

// New creates a string-keyed cache with the given policy and byte
// capacity. A zero or negative capacity means unbounded (pure on-disk
// mode).
func New(policy Policy, maxBytes int64) *Cache { return NewOf(policy, maxBytes) }

// NewOf creates a cache over any comparable key type. The experiment
// replay paths use integer output-step keys to keep file-name formatting
// off the per-access hot path.
func NewOf[K comparable](policy PolicyOf[K], maxBytes int64) *CacheOf[K] {
	c := &CacheOf[K]{
		policy:   policy,
		maxBytes: maxBytes,
		sizes:    map[K]int64{},
		pins:     map[K]int{},
	}
	c.pinnedFn = c.isPinned
	return c
}

// ErrTooLarge is returned when a single file exceeds the cache capacity.
var ErrTooLarge = errors.New("cache: file larger than cache capacity")

// Policy returns the underlying replacement policy.
func (c *CacheOf[K]) Policy() PolicyOf[K] { return c.policy }

// SetPolicy swaps the replacement policy live, rebuilding the new policy
// from the resident set: every resident key is re-inserted with the cost
// reported by costOf, in the order given by order (first = coldest, last
// = most recently used) so the initial recency ranking is deterministic.
// Keys in order that are not resident are skipped; residents missing
// from order are appended in map order (callers that enumerate the whole
// key space never hit this). Sizes, pins and byte accounting are
// untouched — only the replacement ranking is rebuilt, so no file moves
// or eviction happens during the swap.
func (c *CacheOf[K]) SetPolicy(p PolicyOf[K], order []K, costOf func(K) int) {
	p.Reset()
	seen := make(map[K]bool, len(c.sizes))
	for _, key := range order {
		if _, resident := c.sizes[key]; !resident || seen[key] {
			continue
		}
		seen[key] = true
		p.Insert(key, costOf(key))
	}
	// The replay path (core.SetCachePolicy) passes every resident key in
	// order, so this fallback only runs for keys the caller omitted; their
	// relative recency was unspecified to begin with.
	for key := range c.sizes { //simfs:allow maporder fallback for keys missing from order; callers that care pass a complete order
		if !seen[key] {
			p.Insert(key, costOf(key))
		}
	}
	c.policy = p
}

// Contains reports whether key is resident, without touching recency state.
func (c *CacheOf[K]) Contains(key K) bool {
	_, ok := c.sizes[key]
	return ok
}

// Touch records an access. It returns true on a hit (and updates the
// policy's recency state) and false on a miss.
func (c *CacheOf[K]) Touch(key K) bool {
	if c.Contains(key) {
		c.policy.Access(key)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Insert makes key resident with the given size and miss cost, evicting
// unpinned entries as needed. It returns the evicted keys. If key is
// already resident it is touched and its cost refreshed. If capacity
// cannot be reached because all candidates are pinned, the cache overflows
// and the event is counted in Stats.PinBlocked.
func (c *CacheOf[K]) Insert(key K, size int64, cost int) (evicted []K, err error) {
	if err := c.admit(key, size, cost, &evicted); err != nil {
		return nil, err
	}
	return evicted, nil
}

// InsertDiscard inserts like Insert but reports only the number of
// evictions, sparing the evicted-keys allocation. It is the hot-path
// variant for callers (the experiment replay loop) that only count
// evictions and never act on the evicted keys.
func (c *CacheOf[K]) InsertDiscard(key K, size int64, cost int) (evictions int, err error) {
	before := c.stats.Evictions
	if err := c.admit(key, size, cost, nil); err != nil {
		return 0, err
	}
	return int(c.stats.Evictions - before), nil
}

// admit implements Insert; when out is non-nil the evicted keys are
// appended to it.
func (c *CacheOf[K]) admit(key K, size int64, cost int, out *[]K) error {
	if size < 0 {
		return fmt.Errorf("cache: negative size %d for %v", size, key)
	}
	if c.Contains(key) {
		c.policy.Insert(key, cost)
		return nil
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return fmt.Errorf("%w: %v is %d bytes, capacity %d", ErrTooLarge, key, size, c.maxBytes)
	}
	if c.maxBytes > 0 {
		for c.used+size > c.maxBytes {
			victim, ok := c.policy.Victim(c.pinnedFn)
			if !ok {
				c.stats.PinBlocked++
				break
			}
			c.evict(victim)
			if out != nil {
				*out = append(*out, victim)
			}
		}
	}
	c.sizes[key] = size
	c.used += size
	c.policy.Insert(key, cost)
	return nil
}

// EnsureSpace evicts until at least size bytes are free, returning the
// evicted keys. ok is false if it could not free enough space (pins).
func (c *CacheOf[K]) EnsureSpace(size int64) (evicted []K, ok bool) {
	if c.maxBytes <= 0 {
		return nil, true
	}
	for c.used+size > c.maxBytes {
		victim, vok := c.policy.Victim(c.pinnedFn)
		if !vok {
			c.stats.PinBlocked++
			return evicted, false
		}
		c.evict(victim)
		evicted = append(evicted, victim)
	}
	return evicted, true
}

func (c *CacheOf[K]) evict(key K) {
	c.policy.Evict(key)
	c.used -= c.sizes[key]
	delete(c.sizes, key)
	delete(c.pins, key)
	c.stats.Evictions++
}

// Remove withdraws a key without counting an eviction (external deletion).
func (c *CacheOf[K]) Remove(key K) {
	if _, ok := c.sizes[key]; !ok {
		return
	}
	c.policy.Remove(key)
	c.used -= c.sizes[key]
	delete(c.sizes, key)
	delete(c.pins, key)
}

// Pin increments key's reference counter, protecting it from eviction.
// Pinning a non-resident key is an error.
func (c *CacheOf[K]) Pin(key K) error {
	if !c.Contains(key) {
		return fmt.Errorf("cache: pin of non-resident key %v", key)
	}
	c.pins[key]++
	return nil
}

// Unpin decrements key's reference counter. Unpinning below zero or a
// non-resident key is an error.
func (c *CacheOf[K]) Unpin(key K) error {
	n, ok := c.pins[key]
	if !ok || n <= 0 {
		if !c.Contains(key) {
			return fmt.Errorf("cache: unpin of non-resident key %v", key)
		}
		return fmt.Errorf("cache: unpin of unpinned key %v", key)
	}
	if n == 1 {
		delete(c.pins, key)
	} else {
		c.pins[key] = n - 1
	}
	return nil
}

func (c *CacheOf[K]) isPinned(key K) bool { return c.pins[key] > 0 }

// PinCount returns key's current reference count.
func (c *CacheOf[K]) PinCount(key K) int { return c.pins[key] }

// UsedBytes returns the current resident volume.
func (c *CacheOf[K]) UsedBytes() int64 { return c.used }

// MaxBytes returns the configured capacity (0 = unbounded).
func (c *CacheOf[K]) MaxBytes() int64 { return c.maxBytes }

// Len returns the number of resident entries.
func (c *CacheOf[K]) Len() int { return len(c.sizes) }

// Keys returns the resident keys in unspecified order. K is not
// ordered, so callers that need determinism sort the result themselves
// (core.SetCachePolicy sorts by step before replaying accesses).
func (c *CacheOf[K]) Keys() []K {
	keys := make([]K, 0, len(c.sizes))
	for k := range c.sizes { //simfs:allow maporder documented unspecified order; K is not ordered so callers sort
		keys = append(keys, k)
	}
	return keys
}

// Stats returns a copy of the event counters.
func (c *CacheOf[K]) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *CacheOf[K]) ResetStats() { c.stats = Stats{} }

// Reset empties the cache and its policy and zeroes the counters,
// retaining allocated map storage. The replay rep loops reset one cache
// per replay instead of allocating a fresh policy+cache pair.
func (c *CacheOf[K]) Reset() {
	c.policy.Reset()
	clear(c.sizes)
	clear(c.pins)
	c.used = 0
	c.stats = Stats{}
}
