package cache

import (
	"errors"
	"fmt"
)

// Stats counts cache events.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// PinBlocked counts inserts that exceeded capacity because every
	// eviction candidate was pinned; the cache temporarily overflows in
	// that case, as SimFS must keep files that analyses hold open.
	PinBlocked int64
}

// Cache is the byte-accounting eviction engine that SimFS runs over one
// storage area. It combines a replacement Policy with file sizes and
// reference counts (pins): an output step "can be evicted only if its
// reference counter is zero" (paper Sec. III-A).
type Cache struct {
	policy   Policy
	maxBytes int64
	used     int64
	sizes    map[string]int64
	pins     map[string]int
	stats    Stats
}

// New creates a cache with the given policy and byte capacity. A zero or
// negative capacity means unbounded (pure on-disk mode).
func New(policy Policy, maxBytes int64) *Cache {
	return &Cache{
		policy:   policy,
		maxBytes: maxBytes,
		sizes:    map[string]int64{},
		pins:     map[string]int{},
	}
}

// ErrTooLarge is returned when a single file exceeds the cache capacity.
var ErrTooLarge = errors.New("cache: file larger than cache capacity")

// Policy returns the underlying replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Contains reports whether key is resident, without touching recency state.
func (c *Cache) Contains(key string) bool {
	_, ok := c.sizes[key]
	return ok
}

// Touch records an access. It returns true on a hit (and updates the
// policy's recency state) and false on a miss.
func (c *Cache) Touch(key string) bool {
	if c.Contains(key) {
		c.policy.Access(key)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Insert makes key resident with the given size and miss cost, evicting
// unpinned entries as needed. It returns the evicted keys. If key is
// already resident it is touched and its cost refreshed. If capacity
// cannot be reached because all candidates are pinned, the cache overflows
// and the event is counted in Stats.PinBlocked.
func (c *Cache) Insert(key string, size int64, cost int) (evicted []string, err error) {
	if size < 0 {
		return nil, fmt.Errorf("cache: negative size %d for %q", size, key)
	}
	if c.Contains(key) {
		c.policy.Insert(key, cost)
		return nil, nil
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return nil, fmt.Errorf("%w: %q is %d bytes, capacity %d", ErrTooLarge, key, size, c.maxBytes)
	}
	if c.maxBytes > 0 {
		for c.used+size > c.maxBytes {
			victim, ok := c.policy.Victim(c.isPinned)
			if !ok {
				c.stats.PinBlocked++
				break
			}
			c.evict(victim)
			evicted = append(evicted, victim)
		}
	}
	c.sizes[key] = size
	c.used += size
	c.policy.Insert(key, cost)
	return evicted, nil
}

// EnsureSpace evicts until at least size bytes are free, returning the
// evicted keys. ok is false if it could not free enough space (pins).
func (c *Cache) EnsureSpace(size int64) (evicted []string, ok bool) {
	if c.maxBytes <= 0 {
		return nil, true
	}
	for c.used+size > c.maxBytes {
		victim, vok := c.policy.Victim(c.isPinned)
		if !vok {
			c.stats.PinBlocked++
			return evicted, false
		}
		c.evict(victim)
		evicted = append(evicted, victim)
	}
	return evicted, true
}

func (c *Cache) evict(key string) {
	c.policy.Evict(key)
	c.used -= c.sizes[key]
	delete(c.sizes, key)
	delete(c.pins, key)
	c.stats.Evictions++
}

// Remove withdraws a key without counting an eviction (external deletion).
func (c *Cache) Remove(key string) {
	if _, ok := c.sizes[key]; !ok {
		return
	}
	c.policy.Remove(key)
	c.used -= c.sizes[key]
	delete(c.sizes, key)
	delete(c.pins, key)
}

// Pin increments key's reference counter, protecting it from eviction.
// Pinning a non-resident key is an error.
func (c *Cache) Pin(key string) error {
	if !c.Contains(key) {
		return fmt.Errorf("cache: pin of non-resident key %q", key)
	}
	c.pins[key]++
	return nil
}

// Unpin decrements key's reference counter. Unpinning below zero or a
// non-resident key is an error.
func (c *Cache) Unpin(key string) error {
	n, ok := c.pins[key]
	if !ok || n <= 0 {
		if !c.Contains(key) {
			return fmt.Errorf("cache: unpin of non-resident key %q", key)
		}
		return fmt.Errorf("cache: unpin of unpinned key %q", key)
	}
	if n == 1 {
		delete(c.pins, key)
	} else {
		c.pins[key] = n - 1
	}
	return nil
}

func (c *Cache) isPinned(key string) bool { return c.pins[key] > 0 }

// PinCount returns key's current reference count.
func (c *Cache) PinCount(key string) int { return c.pins[key] }

// UsedBytes returns the current resident volume.
func (c *Cache) UsedBytes() int64 { return c.used }

// MaxBytes returns the configured capacity (0 = unbounded).
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Len returns the number of resident entries.
func (c *Cache) Len() int { return len(c.sizes) }

// Keys returns the resident keys in unspecified order.
func (c *Cache) Keys() []string {
	keys := make([]string, 0, len(c.sizes))
	for k := range c.sizes {
		keys = append(keys, k)
	}
	return keys
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }
