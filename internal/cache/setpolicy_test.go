package cache

import (
	"fmt"
	"testing"
)

// SetPolicy swaps the replacement scheme live: the resident set, sizes,
// pins and byte accounting survive; only the ranking is rebuilt.
func TestSetPolicyPreservesResidentSet(t *testing.T) {
	pol, _ := NewPolicyOf[int]("LRU", 8)
	c := NewOf(pol, 8)
	for k := 1; k <= 8; k++ {
		if _, err := c.Insert(k, 1, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Pin(3); err != nil {
		t.Fatal(err)
	}

	newPol, _ := NewPolicyOf[int]("DCL", 8)
	order := []int{1, 2, 3, 4, 5, 6, 7, 8}
	c.SetPolicy(newPol, order, func(k int) int { return k })

	if c.Policy().Name() != "DCL" {
		t.Fatalf("policy after swap = %q", c.Policy().Name())
	}
	if c.Len() != 8 || c.UsedBytes() != 8 {
		t.Fatalf("resident set mangled: len %d used %d", c.Len(), c.UsedBytes())
	}
	for k := 1; k <= 8; k++ {
		if !c.Contains(k) {
			t.Fatalf("key %d lost in the swap", k)
		}
		if !c.policy.Contains(k) {
			t.Fatalf("key %d missing from the rebuilt policy", k)
		}
	}
	if c.PinCount(3) != 1 {
		t.Fatalf("pin lost in the swap: %d", c.PinCount(3))
	}
	// Eviction under the new policy still respects the pin.
	for i := 0; i < 8; i++ {
		if _, err := c.Insert(100+i, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Contains(3) {
		t.Fatal("pinned key evicted after the policy swap")
	}
}

// The rebuild order is the initial recency ranking, so two identical
// swaps behave identically afterwards.
func TestSetPolicyDeterministicOrder(t *testing.T) {
	victims := func() []int {
		pol, _ := NewPolicyOf[int]("LRU", 4)
		c := NewOf(pol, 4)
		for k := 1; k <= 4; k++ {
			c.Insert(k, 1, 1)
		}
		newPol, _ := NewPolicyOf[int]("LRU", 4)
		c.SetPolicy(newPol, []int{2, 4, 1, 3}, func(int) int { return 1 })
		var vs []int
		for k := 10; k < 13; k++ {
			ev, err := c.Insert(k, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			vs = append(vs, ev...)
		}
		return vs
	}
	a, b := victims(), victims()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same swap, different evictions: %v vs %v", a, b)
	}
	// Order semantics: first of order = coldest. With order {2,4,1,3}
	// the first victims are 2, then 4, then 1.
	if fmt.Sprint(a) != "[2 4 1]" {
		t.Fatalf("victims = %v, want [2 4 1] (order-driven recency)", a)
	}
}

// The node arena makes warmed-up policy churn allocation-free: after one
// full insert/evict/reset cycle, repeating the same cycle allocates
// nothing for any of the five schemes.
func TestPolicyArenaRecyclesNodes(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			pol, err := NewPolicyOf[int](name, 32)
			if err != nil {
				t.Fatal(err)
			}
			c := NewOf(pol, 32)
			cycle := func() {
				// Strided re-insertions force evictions (and, for
				// LIRS/ARC, ghost traffic) well past the capacity.
				// InsertDiscard is the replay hot path — Insert would
				// allocate its evicted-keys slice.
				for i := 0; i < 4; i++ {
					for k := 0; k < 64; k++ {
						if _, err := c.InsertDiscard((k*7+i)%96, 1, k%9); err != nil {
							t.Fatal(err)
						}
						c.Touch((k * 3) % 96)
					}
				}
				c.Reset()
			}
			cycle() // warm the arena and the map storage
			if allocs := testing.AllocsPerRun(5, cycle); allocs > 0 {
				t.Errorf("%s: %v allocs per warmed cycle, want 0", name, allocs)
			}
		})
	}
}
