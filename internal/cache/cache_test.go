package cache

import (
	"fmt"
	"testing"
)

func allPolicies(t *testing.T, capacity int) []Policy {
	t.Helper()
	var ps []Policy
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, capacity)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("FIFO", 10); err == nil {
		t.Error("unknown policy should error")
	}
}

// Shared conformance tests: every policy must satisfy the basic Policy
// contract regardless of its internal structure.
func TestPolicyConformance(t *testing.T) {
	for _, p := range allPolicies(t, 8) {
		t.Run(p.Name(), func(t *testing.T) {
			if p.Len() != 0 {
				t.Fatal("fresh policy not empty")
			}
			if _, ok := p.Victim(nil); ok {
				t.Fatal("empty policy proposed a victim")
			}
			p.Access("ghost") // must not panic or create entries
			if p.Len() != 0 || p.Contains("ghost") {
				t.Fatal("Access on absent key created state")
			}

			for i := 0; i < 5; i++ {
				p.Insert(fmt.Sprintf("k%d", i), i+1)
			}
			if p.Len() != 5 {
				t.Fatalf("Len = %d, want 5", p.Len())
			}
			for i := 0; i < 5; i++ {
				if !p.Contains(fmt.Sprintf("k%d", i)) {
					t.Fatalf("k%d not resident", i)
				}
			}

			// Duplicate insert must not duplicate.
			p.Insert("k0", 1)
			if p.Len() != 5 {
				t.Fatalf("duplicate insert changed Len to %d", p.Len())
			}

			// Victim must be resident and unpinned.
			v, ok := p.Victim(func(k string) bool { return k == "k0" || k == "k1" })
			if !ok {
				t.Fatal("no victim with partial pinning")
			}
			if v == "k0" || v == "k1" {
				t.Fatalf("pinned key %q proposed as victim", v)
			}
			if !p.Contains(v) {
				t.Fatalf("victim %q not resident", v)
			}
			p.Evict(v)
			if p.Contains(v) {
				t.Fatalf("evicted key %q still resident", v)
			}
			if p.Len() != 4 {
				t.Fatalf("Len after evict = %d, want 4", p.Len())
			}

			// All pinned → no victim.
			if _, ok := p.Victim(func(string) bool { return true }); ok {
				t.Fatal("victim proposed although everything is pinned")
			}

			// Remove is idempotent.
			p.Remove("k3")
			p.Remove("k3")
			if p.Contains("k3") || p.Len() != 3 {
				t.Fatalf("after Remove: contains=%v len=%d", p.Contains("k3"), p.Len())
			}

			// Drain completely via Victim/Evict.
			for {
				v, ok := p.Victim(nil)
				if !ok {
					break
				}
				p.Evict(v)
			}
			if p.Len() != 0 {
				t.Fatalf("drained policy Len = %d", p.Len())
			}
		})
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.Insert("a", 1)
	p.Insert("b", 1)
	p.Insert("c", 1)
	p.Access("a") // order now (MRU) a c b (LRU)
	v, _ := p.Victim(nil)
	if v != "b" {
		t.Errorf("victim = %q, want b", v)
	}
	p.Evict("b")
	v, _ = p.Victim(nil)
	if v != "c" {
		t.Errorf("victim = %q, want c", v)
	}
}

func TestBCLPrefersCheaperOverLRU(t *testing.T) {
	p := NewBCL().(*costLRU)
	p.Insert("expensive", 10) // LRU end
	p.Insert("cheap", 1)
	p.Insert("mid", 5)
	// LRU is "expensive" (cost 10); first cheaper from the LRU end is
	// "cheap" (cost 1).
	v, ok := p.Victim(nil)
	if !ok || v != "cheap" {
		t.Fatalf("victim = %q, want cheap", v)
	}
	// BCL depreciates the spared LRU immediately: 10 - 1 = 9.
	if cost, _ := p.costOf("expensive"); cost != 9 {
		t.Errorf("depreciated cost = %d, want 9", cost)
	}
}

func TestBCLFallsBackToLRU(t *testing.T) {
	p := NewBCL().(*costLRU)
	p.Insert("a", 1) // LRU, cheapest
	p.Insert("b", 5)
	p.Insert("c", 9)
	v, ok := p.Victim(nil)
	if !ok || v != "a" {
		t.Errorf("victim = %q, want LRU fallback a", v)
	}
}

func TestBCLDepreciationConverges(t *testing.T) {
	p := NewBCL().(*costLRU)
	p.Insert("hog", 100)
	p.Insert("w1", 30)
	// Repeated sparing must eventually exhaust the hog's cost so it gets
	// evicted rather than starving cheaper entries forever.
	for i := 0; i < 10; i++ {
		v, ok := p.Victim(nil)
		if !ok {
			t.Fatal("no victim")
		}
		if v == "hog" {
			return // depreciated to the point of eviction: correct
		}
		p.Evict(v)
		p.Insert(fmt.Sprintf("w%d", i+2), 30)
	}
	t.Error("hog never became the victim despite depreciation")
}

func TestDCLDeferredDepreciation(t *testing.T) {
	p := NewDCL().(*costLRU)
	p.Insert("lru", 10)
	p.Insert("cheap", 2)
	// Victim selection spares "lru", evicts "cheap", arming (cheap→lru).
	v, _ := p.Victim(nil)
	if v != "cheap" {
		t.Fatalf("victim = %q, want cheap", v)
	}
	p.Evict("cheap")
	// DCL: no depreciation yet.
	if cost, _ := p.costOf("lru"); cost != 10 {
		t.Fatalf("cost should be undepreciated, got %d", cost)
	}
	// "cheap" misses again before "lru" is re-accessed → depreciate by 2.
	p.Insert("cheap", 2)
	if cost, _ := p.costOf("lru"); cost != 8 {
		t.Errorf("cost after deferred depreciation = %d, want 8", cost)
	}
}

func TestDCLAccessCancelsDepreciation(t *testing.T) {
	p := NewDCL().(*costLRU)
	p.Insert("lru", 10)
	p.Insert("cheap", 2)
	v, _ := p.Victim(nil)
	if v != "cheap" {
		t.Fatalf("victim = %q", v)
	}
	p.Evict("cheap")
	p.Access("lru") // sparing proved right: cancel pending depreciation
	p.Insert("cheap", 2)
	if cost, _ := p.costOf("lru"); cost != 10 {
		t.Errorf("cost = %d, want 10 (depreciation canceled)", cost)
	}
}

func TestLIRSPromotionOnStackHit(t *testing.T) {
	p := NewLIRS(4) // lCap=3, hCap=1
	p.Insert("a", 1)
	p.Insert("b", 1)
	p.Insert("c", 1) // fills the LIR set
	p.Insert("h", 1) // resident HIR
	// h is in the queue: the first victim.
	v, _ := p.Victim(nil)
	if v != "h" {
		t.Fatalf("victim = %q, want h (resident HIR)", v)
	}
	// Hit on h while on the stack promotes it to LIR, demoting the
	// deepest LIR entry (a).
	p.Access("h")
	v, _ = p.Victim(nil)
	if v != "a" {
		t.Errorf("victim after promotion = %q, want demoted a", v)
	}
}

func TestLIRSGhostPromotion(t *testing.T) {
	p := NewLIRS(4)
	p.Insert("a", 1)
	p.Insert("b", 1)
	p.Insert("c", 1)
	p.Insert("x", 1) // HIR
	p.Evict("x")     // becomes a ghost on the stack
	if p.Contains("x") {
		t.Fatal("evicted x still resident")
	}
	// Re-inserting a ghost promotes it straight to LIR.
	p.Insert("x", 1)
	if !p.Contains("x") {
		t.Fatal("x not resident after re-insert")
	}
	// The demoted LIR entry (a) is now the eviction candidate.
	v, _ := p.Victim(nil)
	if v != "a" {
		t.Errorf("victim = %q, want a", v)
	}
}

func TestLIRSScanResistance(t *testing.T) {
	// A long scan of one-shot keys must not displace the hot LIR set.
	p := NewLIRS(10)
	for i := 0; i < 9; i++ {
		p.Insert(fmt.Sprintf("hot%d", i), 1)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("scan%d", i)
		p.Insert(k, 1)
		if v, ok := p.Victim(nil); ok {
			p.Evict(v)
		}
		for j := 0; j < 9; j++ {
			p.Access(fmt.Sprintf("hot%d", j))
		}
	}
	for j := 0; j < 9; j++ {
		if !p.Contains(fmt.Sprintf("hot%d", j)) {
			t.Errorf("hot%d displaced by scan", j)
		}
	}
}

func TestARCAdaptsToFrequency(t *testing.T) {
	p := NewARC(4)
	p.Insert("f1", 1)
	p.Insert("f2", 1)
	p.Access("f1") // f1,f2 → T2 after re-access
	p.Access("f2")
	p.Insert("r1", 1)
	p.Insert("r2", 1)
	// T1 = {r1,r2}, T2 = {f1,f2}. Victim should come from T1 (p=0).
	v, _ := p.Victim(nil)
	if v != "r1" && v != "r2" {
		t.Errorf("victim = %q, want a T1 entry", v)
	}
	p.Evict(v) // goes to B1
	if p.Contains(v) {
		t.Error("evicted entry still resident")
	}
	// Ghost hit in B1 raises p and resurrects into T2.
	p.Insert(v, 1)
	if !p.Contains(v) {
		t.Error("ghost re-insert did not make entry resident")
	}
	if p.p == 0 {
		t.Error("ghost hit in B1 should raise the adaptation target")
	}
}

func TestARCGhostB2LowersP(t *testing.T) {
	p := NewARC(4)
	p.Insert("a", 1)
	p.Access("a") // a → T2
	v, _ := p.Victim(nil)
	if v != "a" {
		t.Fatalf("victim = %q, want a", v)
	}
	p.p = 2 // pretend adaptation had favored recency
	p.Evict("a")
	p.Insert("a", 1) // ghost hit in B2
	if p.p != 1 {
		t.Errorf("p after B2 ghost hit = %d, want 1", p.p)
	}
}

func TestCacheInsertAndEvict(t *testing.T) {
	c := New(NewLRU(), 30)
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(fmt.Sprintf("k%d", i), 10, 1); err != nil {
			t.Fatal(err)
		}
	}
	if c.UsedBytes() != 30 || c.Len() != 3 {
		t.Fatalf("used=%d len=%d", c.UsedBytes(), c.Len())
	}
	evicted, err := c.Insert("k3", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "k0" {
		t.Errorf("evicted = %v, want [k0]", evicted)
	}
	if c.UsedBytes() != 30 {
		t.Errorf("used = %d after eviction", c.UsedBytes())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestCachePinProtectsFromEviction(t *testing.T) {
	c := New(NewLRU(), 20)
	c.Insert("a", 10, 1)
	c.Insert("b", 10, 1)
	if err := c.Pin("a"); err != nil {
		t.Fatal(err)
	}
	evicted, _ := c.Insert("c", 10, 1)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted = %v, want [b] (a is pinned)", evicted)
	}
	if !c.Contains("a") {
		t.Error("pinned entry evicted")
	}
	if err := c.Unpin("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unpin("a"); err == nil {
		t.Error("double unpin should fail")
	}
	if err := c.Pin("ghost"); err == nil {
		t.Error("pin of non-resident key should fail")
	}
	if err := c.Unpin("ghost"); err == nil {
		t.Error("unpin of non-resident key should fail")
	}
}

func TestCacheAllPinnedOverflows(t *testing.T) {
	c := New(NewLRU(), 20)
	c.Insert("a", 10, 1)
	c.Insert("b", 10, 1)
	c.Pin("a")
	c.Pin("b")
	evicted, err := c.Insert("c", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Errorf("evicted pinned entries: %v", evicted)
	}
	if c.UsedBytes() != 30 {
		t.Errorf("cache should overflow when all pinned, used=%d", c.UsedBytes())
	}
	if c.Stats().PinBlocked != 1 {
		t.Errorf("PinBlocked = %d, want 1", c.Stats().PinBlocked)
	}
}

func TestCacheTooLarge(t *testing.T) {
	c := New(NewLRU(), 10)
	if _, err := c.Insert("huge", 11, 1); err == nil {
		t.Error("oversized insert should fail")
	}
	if _, err := c.Insert("neg", -1, 1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestCacheTouchAndStats(t *testing.T) {
	c := New(NewLRU(), 100)
	c.Insert("a", 1, 1)
	if !c.Touch("a") {
		t.Error("touch of resident key should hit")
	}
	if c.Touch("b") {
		t.Error("touch of absent key should miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := New(NewLRU(), 0)
	for i := 0; i < 1000; i++ {
		if ev, _ := c.Insert(fmt.Sprintf("k%d", i), 1<<20, 1); len(ev) != 0 {
			t.Fatalf("unbounded cache evicted %v", ev)
		}
	}
	if c.Len() != 1000 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheEnsureSpace(t *testing.T) {
	c := New(NewLRU(), 30)
	c.Insert("a", 10, 1)
	c.Insert("b", 10, 1)
	c.Insert("c", 10, 1)
	evicted, ok := c.EnsureSpace(20)
	if !ok || len(evicted) != 2 {
		t.Errorf("EnsureSpace: evicted=%v ok=%v", evicted, ok)
	}
	c.Pin("c")
	if _, ok := c.EnsureSpace(25); ok {
		t.Error("EnsureSpace should fail when pins block")
	}
}

func TestCacheRemove(t *testing.T) {
	c := New(NewLRU(), 30)
	c.Insert("a", 10, 1)
	c.Remove("a")
	c.Remove("a") // idempotent
	if c.Contains("a") || c.UsedBytes() != 0 {
		t.Error("remove failed")
	}
	if c.Stats().Evictions != 0 {
		t.Error("external removal must not count as eviction")
	}
}

func TestCacheReinsertRefreshesCost(t *testing.T) {
	p := NewDCL().(*costLRU)
	c := New(p, 100)
	c.Insert("a", 1, 5)
	c.Insert("a", 1, 9)
	if cost, _ := p.costOf("a"); cost != 9 {
		t.Errorf("cost = %d, want refreshed 9", cost)
	}
	if c.Len() != 1 {
		t.Errorf("duplicate insert duplicated entry")
	}
}
