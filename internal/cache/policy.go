// Package cache implements the simulation-data caching layer of SimFS
// (paper Sec. III-D): fully associative replacement over output step files,
// with reference counting (pinning) so that output steps currently accessed
// by an analysis are never evicted, and with cost-aware schemes whose miss
// cost is the number of output steps that must be re-simulated (the
// distance from the closest previous restart step).
//
// Five replacement policies are provided, matching the paper's evaluation:
// LRU, LIRS (Jiang & Zhang), ARC (Megiddo & Modha), and the cost-sensitive
// BCL and DCL of Jeong & Dubois adapted to fully associative caches.
package cache

import "fmt"

// Policy is a fully associative replacement policy over string keys.
// Implementations track resident entries (and, for LIRS/ARC, ghost
// history) but never account for bytes or pins — the Cache engine does.
//
// The engine's contract: keys become resident via Insert, hits on resident
// keys call Access, eviction is a two-step Victim→Evict dance (so policies
// with ghost lists can retire the entry into history), and Remove withdraws
// a key that disappeared for external reasons (file deleted by an
// operator, context reset).
type Policy interface {
	// Name returns the scheme's short name (LRU, LIRS, ARC, BCL, DCL).
	Name() string
	// Access records a hit on a resident key. Calling it for an absent
	// key is a no-op.
	Access(key string)
	// Insert records key becoming resident, with the given miss cost
	// (output steps from the closest previous restart step). Inserting an
	// already-resident key behaves like Access.
	Insert(key string, cost int)
	// Victim proposes the next eviction victim among resident entries for
	// which pinned(key) is false. ok is false if every resident entry is
	// pinned (or the cache is empty).
	Victim(pinned func(string) bool) (victim string, ok bool)
	// Evict removes a key previously returned by Victim. Ghost-keeping
	// policies retire it into their history.
	Evict(key string)
	// Remove withdraws a key without keeping history.
	Remove(key string)
	// Contains reports whether key is resident.
	Contains(key string) bool
	// Len returns the number of resident entries.
	Len() int
}

// NewPolicy constructs a policy by name. capacity is the cache size in
// entries; it parameterizes the internal targets of LIRS and ARC and is
// ignored by the pure-recency and cost-based schemes.
func NewPolicy(name string, capacity int) (Policy, error) {
	switch name {
	case "LRU":
		return NewLRU(), nil
	case "LIRS":
		return NewLIRS(capacity), nil
	case "ARC":
		return NewARC(capacity), nil
	case "BCL":
		return NewBCL(), nil
	case "DCL":
		return NewDCL(), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", name)
}

// PolicyNames lists the available replacement schemes in the order the
// paper's Figure 5 plots them.
func PolicyNames() []string { return []string{"ARC", "BCL", "DCL", "LIRS", "LRU"} }
