// Package cache implements the simulation-data caching layer of SimFS
// (paper Sec. III-D): fully associative replacement over output step files,
// with reference counting (pinning) so that output steps currently accessed
// by an analysis are never evicted, and with cost-aware schemes whose miss
// cost is the number of output steps that must be re-simulated (the
// distance from the closest previous restart step).
//
// Five replacement policies are provided, matching the paper's evaluation:
// LRU, LIRS (Jiang & Zhang), ARC (Megiddo & Modha), and the cost-sensitive
// BCL and DCL of Jeong & Dubois adapted to fully associative caches.
//
// All policies are generic over the key type. The Virtualizer keys entries
// by file name (the string-keyed Policy/Cache aliases below); the
// experiment replay hot paths key by integer output-step index, which
// avoids formatting a file name per access.
package cache

import "fmt"

// PolicyOf is a fully associative replacement policy over keys of type K.
// Implementations track resident entries (and, for LIRS/ARC, ghost
// history) but never account for bytes or pins — the Cache engine does.
//
// The engine's contract: keys become resident via Insert, hits on resident
// keys call Access, eviction is a two-step Victim→Evict dance (so policies
// with ghost lists can retire the entry into history), and Remove withdraws
// a key that disappeared for external reasons (file deleted by an
// operator, context reset).
type PolicyOf[K comparable] interface {
	// Name returns the scheme's short name (LRU, LIRS, ARC, BCL, DCL).
	Name() string
	// Access records a hit on a resident key. Calling it for an absent
	// key is a no-op.
	Access(key K)
	// Insert records key becoming resident, with the given miss cost
	// (output steps from the closest previous restart step). Inserting an
	// already-resident key behaves like Access.
	Insert(key K, cost int)
	// Victim proposes the next eviction victim among resident entries for
	// which pinned(key) is false. ok is false if every resident entry is
	// pinned (or the cache is empty).
	Victim(pinned func(K) bool) (victim K, ok bool)
	// Evict removes a key previously returned by Victim. Ghost-keeping
	// policies retire it into their history.
	Evict(key K)
	// Remove withdraws a key without keeping history.
	Remove(key K)
	// Contains reports whether key is resident.
	Contains(key K) bool
	// Len returns the number of resident entries.
	Len() int
	// Reset forgets all resident entries, ghosts and adaptation state,
	// returning the policy to its freshly constructed condition while
	// keeping allocated map storage for reuse (the replay rep loops reset
	// one policy per replay instead of allocating a fresh one).
	Reset()
}

// Policy is the string-keyed policy used by the Virtualizer, whose cache
// keys are file names under the context's naming convention.
type Policy = PolicyOf[string]

// NewPolicyOf constructs a policy by name over any comparable key type.
// capacity is the cache size in entries; it parameterizes the internal
// targets of LIRS and ARC and is ignored by the pure-recency and
// cost-based schemes.
func NewPolicyOf[K comparable](name string, capacity int) (PolicyOf[K], error) {
	switch name {
	case "LRU":
		return newLRU[K](), nil
	case "LIRS":
		return newLIRS[K](capacity), nil
	case "ARC":
		return newARC[K](capacity), nil
	case "BCL":
		return newCostLRU[K]("BCL", false), nil
	case "DCL":
		return newCostLRU[K]("DCL", true), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", name)
}

// NewPolicy constructs a string-keyed policy by name (the Virtualizer's
// adapter over the generic implementations).
func NewPolicy(name string, capacity int) (Policy, error) {
	return NewPolicyOf[string](name, capacity)
}

// PolicyNames lists the available replacement schemes in the order the
// paper's Figure 5 plots them.
func PolicyNames() []string { return []string{"ARC", "BCL", "DCL", "LIRS", "LRU"} }
