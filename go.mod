module simfs

go 1.24
