package simfs

import (
	"testing"
	"time"
)

// demoContext returns a tiny, fast context for facade tests.
func demoContext() *Context {
	return &Context{
		Name:               "demo",
		Grid:               Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32},
		OutputBytes:        128,
		RestartBytes:       64,
		Tau:                2 * time.Millisecond,
		Alpha:              4 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
}

// TestPublicAPIEndToEnd drives the whole system through the facade only:
// daemon up, client dial, virtualized read, SIMFS_* API, Table-I shim.
func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := NewDaemon(t.TempDir(), 1, "DCL", demoContext())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunInitialSimulation("demo"); err != nil {
		t.Fatal(err)
	}
	if err := d.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go d.Server.Serve()
	defer func() {
		d.Close()
		d.Launcher.Wait()
	}()

	c, err := Dial(d.Server.Addr(), "facade-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("demo")
	if err != nil {
		t.Fatal(err)
	}

	// Transparent mode through the netCDF shim.
	f, err := NCOpen(ctx, ctx.Filename(7))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.VaraGetDouble(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := MeanVar(vals)
	_ = mean
	if variance < 0 {
		t.Error("variance cannot be negative")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// SIMFS_* API.
	st, err := ctx.Acquire(ctx.Filename(3), ctx.Filename(12))
	if err != nil || !st.Ready {
		t.Fatalf("acquire: %+v, %v", st, err)
	}
	for _, file := range []string{ctx.Filename(3), ctx.Filename(12)} {
		same, err := ctx.Bitrep(file)
		if err != nil || !same {
			t.Errorf("bitrep %s = %v, %v", file, same, err)
		}
		if err := ctx.Release(file); err != nil {
			t.Error(err)
		}
	}

	stats, err := ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Restarts == 0 || stats.StepsProduced == 0 {
		t.Errorf("no re-simulation recorded: %+v", stats)
	}
}

func TestPresetsExposed(t *testing.T) {
	for _, ctx := range []*Context{CosmoScaling(), CosmoCost(), Flash(), CacheEval()} {
		if err := ctx.Validate(); err != nil {
			t.Errorf("%s: %v", ctx.Name, err)
		}
	}
	if len(Policies()) != 5 {
		t.Errorf("policies = %v", Policies())
	}
}
