// Package simfs is a Go implementation of SimFS, the simulation-data
// virtualizing file system interface of Di Girolamo, Schmid, Schulthess
// and Hoefler (IPDPS 2019). SimFS exposes a virtualized view of a
// simulation's output: instead of storing every output step, it keeps
// restart checkpoints plus a bounded cache of output files, and
// re-simulates missing data on demand — trading storage for computation.
//
// The Data Virtualizer is sharded per simulation context: every context
// owns its own lock, storage area, cache policy instance, prefetch
// agents and simulation table, so concurrent analyses of different
// contexts never serialize on a shared mutex (pipeline virtualization
// coordinates across shards with a fixed downstream→upstream lock
// order). File readiness is announced through a publish/subscribe
// notification hub: waits, acquires and the Watch API subscribe to
// (context, step) topics and simulator progress is published without
// holding shard locks. Per-shard lock-contention counters travel with
// the usual statistics.
//
// Clients and daemon speak a versioned wire protocol: every connection
// opens with a hello handshake (version + capability negotiation), every
// request is a typed envelope, and failures carry machine-readable error
// codes (ErrCodeOf) instead of free-text-only messages. The daemon also
// serves a control plane — the Admin client reconfigures the
// re-simulation scheduler, swaps cache replacement policies (rebuilt
// live from the resident set), registers/deregisters simulation
// contexts and drains/resumes them, all without a restart; cmd/simfs-ctl
// is its command-line front-end. Cancellation and deadlines plumb
// through context.Context (DialContext, AcquireCtx, Req.WaitCtx).
//
// The package re-exports the system's public surface:
//
//   - Context / Grid describe a simulation configuration (Δd, Δr,
//     timeline, sizes, performance model, prefetching limits).
//   - NewDaemon builds a Data Virtualizer daemon: the sharded
//     Virtualizer state machine, per-context disk storage areas, an
//     in-process simulator launcher, and a TCP front-end for DVLib
//     clients.
//   - Dial / DialContext / Client / AnalysisContext are the DVLib
//     client library: transparent open/read/close plus the SIMFS_* API
//     (Acquire, AcquireNB, Wait, Test, Waitsome, Testsome, Release,
//     Bitrep) and the notification-only Watch subscription. Sessions
//     negotiate the binary fast-path codec automatically (WithJSONCodec
//     opts out); OpenAsync/ReleaseAsync pipeline batched requests.
//   - Client.Admin is the control-plane client (scheduler, cache
//     policies, context lifecycle).
//   - NCOpen / H5Fopen / AdiosOpen are the Table-I I/O-library bindings.
//   - CosmoScaling / CosmoCost / Flash / CacheEval are the paper's
//     published experiment configurations.
//
// See the examples directory for runnable end-to-end scenarios and
// DESIGN.md / EXPERIMENTS.md for the reproduction details.
package simfs

import (
	"context"

	"simfs/internal/core"
	"simfs/internal/dvlib"
	"simfs/internal/ioshim"
	"simfs/internal/model"
	"simfs/internal/netproto"
	"simfs/internal/sched"
	"simfs/internal/server"
	"simfs/internal/simulator"
)

// Context is a simulation context: a simulator plus one configuration
// (paper Sec. II-A). Fill in the Grid, sizes and performance model, then
// register it with a daemon.
type Context = model.Context

// Grid is the temporal discretization of a simulation configuration:
// output interval Δd, restart interval Δr and total timesteps.
type Grid = model.Grid

// Daemon is a fully wired SimFS instance: Virtualizer, storage areas,
// in-process simulator launcher and TCP front-end.
type Daemon = server.Stack

// NewDaemon builds a daemon rooted at baseDir (one storage-area directory
// per context). timeScale divides all simulated durations — 1000 turns
// the published COSMO 13 s restart latency into 13 ms, convenient for
// local experimentation. policy selects the cache replacement scheme:
// LRU, LIRS, ARC, BCL or DCL (the paper's default).
func NewDaemon(baseDir string, timeScale int, policy string, ctxs ...*Context) (*Daemon, error) {
	return server.NewStack(baseDir, timeScale, policy, ctxs...)
}

// SchedConfig selects the re-simulation scheduling policy of a daemon:
// coalescing of overlapping launch requests, priority-ordered queueing
// (demand > guided prefetch > agent prefetch), a global node budget
// shared by all contexts, demand-over-prefetch preemption and per-client
// deficit-round-robin fairness. The zero value reproduces the paper's
// inline rules exactly.
type SchedConfig = sched.Config

// PreemptPolicy selects the preemption victim when a node-blocked demand
// miss may kill a running agent prefetch: youngest-first or
// cheapest-remaining-first on the cost model's remaining-time estimate.
type PreemptPolicy = sched.PreemptPolicy

// ParsePreemptPolicy maps a flag/wire name ("off", "youngest",
// "cheapest") to a PreemptPolicy.
func ParsePreemptPolicy(name string) (PreemptPolicy, error) {
	return sched.ParsePreemptPolicy(name)
}

// NewScheduledDaemon is NewDaemon with an explicit scheduling policy.
func NewScheduledDaemon(baseDir string, timeScale int, policy string, cfg SchedConfig, ctxs ...*Context) (*Daemon, error) {
	return server.NewScheduledStack(baseDir, timeScale, policy, cfg, ctxs...)
}

// SchedInfo mirrors the daemon's live scheduler configuration on the
// wire (Admin.SchedConfig / Admin.SetSchedConfig results).
type SchedInfo = dvlib.SchedConfig

// SchedUpdate is a partial scheduler reconfiguration for
// Admin.SetSchedConfig: nil fields keep the daemon's current value.
type SchedUpdate = dvlib.SchedUpdate

// Client is a DVLib connection to the daemon.
type Client = dvlib.Client

// AnalysisContext is an open simulation context on a client (the handle
// SIMFS_Init returns).
type AnalysisContext = dvlib.Context

// Status mirrors SIMFS_Status: error state and estimated waiting time.
type Status = dvlib.Status

// Req is a non-blocking acquire handle (SIMFS_Req).
type Req = dvlib.Req

// Watch is a notification-only subscription to file availability,
// served by the daemon's notification hub.
type Watch = dvlib.Watch

// WatchEvent is one notification from a Watch.
type WatchEvent = dvlib.WatchEvent

// Admin is the control-plane client of a daemon connection
// (Client.Admin): live scheduler reconfiguration, cache-policy swaps,
// context registration/deregistration and drain/resume.
type Admin = dvlib.Admin

// PeerInfo is one federation link as reported by Admin.Peers: a
// router's ring member, a daemon's outbound bridge connection ("out")
// or an inbound fed-watch session ("in").
type PeerInfo = netproto.PeerInfo

// OpLatency is one per-op service-time summary in a Stats frame
// (count, p50, p99 in nanoseconds).
type OpLatency = netproto.OpLatency

// Error is a structured daemon-reported failure carrying the
// machine-readable error code alongside the message.
type Error = dvlib.Error

// ErrCode classifies daemon failures on the wire (CodeNoSuchContext,
// CodeBusy, CodeVersion, …).
type ErrCode = netproto.ErrCode

// Structured error codes a daemon response may carry.
const (
	CodeVersion       = netproto.CodeVersion
	CodeNoSuchContext = netproto.CodeNoSuchContext
	CodeBadRequest    = netproto.CodeBadRequest
	CodeUnsupported   = netproto.CodeUnsupported
	CodeBusy          = netproto.CodeBusy
	CodeNotProduced   = netproto.CodeNotProduced
	CodeFailed        = netproto.CodeFailed
	CodeDraining      = netproto.CodeDraining
)

// ErrCodeOf extracts the structured code from an error chain ("" when
// the error did not come from the daemon).
func ErrCodeOf(err error) ErrCode { return dvlib.ErrCodeOf(err) }

// DialOption customizes Dial behavior (e.g. WithJSONCodec).
type DialOption = dvlib.DialOption

// WithJSONCodec disables binary-codec negotiation: the connection speaks
// JSON frames even against a daemon offering the fast path.
func WithJSONCodec() DialOption { return dvlib.WithJSONCodec() }

// ReconnectConfig tunes client auto-reconnect: jittered exponential
// backoff between redial attempts and the total budget before the
// client gives up for good. The zero value uses sane defaults.
type ReconnectConfig = dvlib.ReconnectConfig

// WithReconnect makes the client survive connection loss: it redials
// with backoff, re-runs the handshake (including codec negotiation),
// re-opens every held file reference, re-subscribes active watches, and
// transparently replays idempotent in-flight requests. Non-idempotent
// requests in flight at the reset (release, acquire, control-plane ops)
// fail with ErrReconnecting instead — the client cannot know whether
// they landed, so the caller decides.
func WithReconnect(cfg ReconnectConfig) DialOption { return dvlib.WithReconnect(cfg) }

// ErrReconnecting marks a non-idempotent request that was in flight
// when the connection reset. The client's state has been resynced with
// the daemon; re-issue the request if it is still wanted.
var ErrReconnecting = dvlib.ErrReconnecting

// ErrNotHeld marks a release of a file the client does not hold — the
// reconnect-mode guard against double releases silently corrupting
// daemon-side reference counts.
var ErrNotHeld = dvlib.ErrNotHeld

// RetryPolicy configures the daemon's re-simulation failure ledger:
// failed re-simulations retry with jittered exponential backoff, and an
// interval failing persistently is quarantined by a circuit breaker
// (demand opens fail fast with structured responses until the cooldown
// elapses or an operator resets it). The zero value disables the ledger
// — failures fail immediately, the pre-ledger behavior. Install it with
// Daemon.V.SetRetryPolicy.
type RetryPolicy = core.RetryPolicy

// QuarantineError is the structured failure the daemon reports for an
// interval held by the re-simulation circuit breaker, carrying the
// attempt count and the remaining cooldown.
type QuarantineError = core.QuarantineError

// Codec frames protocol messages on the wire; JSONCodec and BinaryCodec
// are the two implementations a session can negotiate.
type Codec = netproto.Codec

// JSONCodec returns the self-describing JSON frame codec (protocol v2).
func JSONCodec() Codec { return netproto.JSON }

// BinaryCodec returns the binary fast-path frame codec (protocol v3):
// hot data-plane ops travel as compact binary frames, everything else
// falls back to JSON inside the same length-prefixed framing.
func BinaryCodec() Codec { return netproto.Binary }

// OpenCall is a pipelined AnalysisContext.OpenAsync in flight.
type OpenCall = dvlib.OpenCall

// ReleaseCall is a pipelined AnalysisContext.ReleaseAsync in flight.
type ReleaseCall = dvlib.ReleaseCall

// Dial connects an analysis application to the daemon. clientName
// identifies the application: the DV associates its prefetch agent and
// reference counts with it.
func Dial(addr, clientName string, opts ...DialOption) (*Client, error) {
	return dvlib.Dial(addr, clientName, opts...)
}

// DialContext is Dial honoring a context for the TCP connect and the
// protocol handshake.
func DialContext(ctx context.Context, addr, clientName string, opts ...DialOption) (*Client, error) {
	return dvlib.DialContext(ctx, addr, clientName, opts...)
}

// NCFile is a netCDF-style file handle whose I/O is interposed onto the
// DV (Table I).
type NCFile = ioshim.NCFile

// H5File is an HDF5-style file handle (Table I).
type H5File = ioshim.H5File

// AdiosFile is an ADIOS-style read handle with deferred reads (Table I).
type AdiosFile = ioshim.AdiosFile

// NCOpen corresponds to nc_open: non-blocking open through the DV.
func NCOpen(ctx *AnalysisContext, path string) (*NCFile, error) { return ioshim.NCOpen(ctx, path) }

// H5Fopen corresponds to H5Fopen.
func H5Fopen(ctx *AnalysisContext, path string) (*H5File, error) { return ioshim.H5Fopen(ctx, path) }

// AdiosOpen corresponds to adios_open in read mode.
func AdiosOpen(ctx *AnalysisContext, path string) (*AdiosFile, error) {
	return ioshim.AdiosOpen(ctx, path)
}

// MeanVar computes mean and variance of a field — the analysis kernel of
// the paper's evaluation.
func MeanVar(xs []float64) (mean, variance float64) { return ioshim.MeanVar(xs) }

// Published experiment configurations (paper Secs. V-A and VI).

// CosmoScaling is the COSMO strong-scaling configuration (Fig. 16).
func CosmoScaling() *Context { return simulator.CosmoScaling() }

// CosmoCost is the COSMO cost-model calibration (Sec. V-A, 50 TiB).
func CosmoCost() *Context { return simulator.CosmoCost() }

// Flash is the FLASH Sedov blast-wave configuration (Fig. 18).
func Flash() *Context { return simulator.Flash() }

// CacheEval is the replacement-scheme evaluation configuration (Fig. 5).
func CacheEval() *Context { return simulator.CacheEval() }

// Policies lists the available cache replacement schemes.
func Policies() []string { return []string{"ARC", "BCL", "DCL", "LIRS", "LRU"} }
